"""Compressed-sparse-row graph container.

The CSR graph is the foundation for every subsystem in this
reproduction: the Ligra-like engine iterates its out- and in-edge
arrays, the degree analytics read its offsets, and the memory
simulator derives edge-array addresses from the positions of edges in
the CSR storage (mirroring how Ligra lays the ``edgeList`` out in
memory).

Both edge directions are materialized: ``out_offsets``/``out_targets``
store outgoing edges sorted by source, and ``in_offsets``/``in_sources``
store incoming edges sorted by destination. Undirected graphs store
each edge in both directions and set :attr:`CSRGraph.directed` to
``False``.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Iterator, Optional, Sequence, Tuple

import numpy as np

from repro.errors import GraphError

__all__ = ["CSRGraph", "from_edges"]


def _build_csr(
    num_vertices: int,
    src: np.ndarray,
    dst: np.ndarray,
    weights: Optional[np.ndarray],
) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
    """Sort edges by ``src`` and build (offsets, targets, weights)."""
    order = np.argsort(src, kind="stable")
    sorted_src = src[order]
    targets = dst[order]
    sorted_weights = weights[order] if weights is not None else None
    counts = np.bincount(sorted_src, minlength=num_vertices)
    offsets = np.zeros(num_vertices + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return offsets, targets.astype(np.int64, copy=False), sorted_weights


class CSRGraph:
    """An immutable directed or undirected graph in CSR form.

    Parameters
    ----------
    num_vertices:
        Number of vertices; vertex ids are ``0 .. num_vertices - 1``.
    src, dst:
        Edge endpoint arrays of equal length. For undirected graphs,
        pass each edge once and set ``directed=False``; the reverse
        direction is materialized internally.
    weights:
        Optional per-edge weights (same length as ``src``). Used by
        SSSP; unweighted algorithms ignore them.
    directed:
        Whether the graph is directed.
    """

    def __init__(
        self,
        num_vertices: int,
        src: Sequence[int],
        dst: Sequence[int],
        weights: Optional[Sequence[float]] = None,
        directed: bool = True,
    ) -> None:
        if num_vertices < 0:
            raise GraphError(f"num_vertices must be >= 0, got {num_vertices}")
        src_arr = np.asarray(src, dtype=np.int64)
        dst_arr = np.asarray(dst, dtype=np.int64)
        if src_arr.ndim != 1 or dst_arr.ndim != 1:
            raise GraphError("src and dst must be one-dimensional")
        if src_arr.shape != dst_arr.shape:
            raise GraphError(
                f"src and dst must have equal length, got {len(src_arr)} and {len(dst_arr)}"
            )
        w_arr: Optional[np.ndarray] = None
        if weights is not None:
            w_arr = np.asarray(weights, dtype=np.float64)
            if w_arr.shape != src_arr.shape:
                raise GraphError("weights must have the same length as src/dst")
        if len(src_arr) and num_vertices == 0:
            raise GraphError("edges present but num_vertices is 0")
        if len(src_arr):
            top = max(int(src_arr.max()), int(dst_arr.max()))
            low = min(int(src_arr.min()), int(dst_arr.min()))
            if low < 0 or top >= num_vertices:
                raise GraphError(
                    f"edge endpoints must lie in [0, {num_vertices - 1}], "
                    f"found range [{low}, {top}]"
                )

        self._num_vertices = int(num_vertices)
        self._directed = bool(directed)
        self._num_input_edges = int(len(src_arr))
        self._fingerprint: Optional[str] = None

        if not directed:
            # Store both directions; skip duplicating self-loops.
            loops = src_arr == dst_arr
            rev_src = dst_arr[~loops]
            rev_dst = src_arr[~loops]
            all_src = np.concatenate([src_arr, rev_src])
            all_dst = np.concatenate([dst_arr, rev_dst])
            if w_arr is not None:
                all_w: Optional[np.ndarray] = np.concatenate([w_arr, w_arr[~loops]])
            else:
                all_w = None
        else:
            all_src, all_dst, all_w = src_arr, dst_arr, w_arr

        self._out_offsets, self._out_targets, self._out_weights = _build_csr(
            num_vertices, all_src, all_dst, all_w
        )
        self._in_offsets, self._in_sources, self._in_weights = _build_csr(
            num_vertices, all_dst, all_src, all_w
        )

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices in the graph."""
        return self._num_vertices

    @property
    def num_edges(self) -> int:
        """Number of stored directed arcs (2x input edges if undirected)."""
        return int(len(self._out_targets))

    @property
    def num_input_edges(self) -> int:
        """Number of edges as supplied by the caller."""
        return self._num_input_edges

    @property
    def directed(self) -> bool:
        """Whether the graph is directed."""
        return self._directed

    @property
    def weighted(self) -> bool:
        """Whether per-edge weights were supplied."""
        return self._out_weights is not None

    # ------------------------------------------------------------------
    # CSR array views (read-only)
    # ------------------------------------------------------------------
    @property
    def out_offsets(self) -> np.ndarray:
        """Out-edge offsets, length ``num_vertices + 1``."""
        return self._out_offsets

    @property
    def out_targets(self) -> np.ndarray:
        """Concatenated out-neighbor ids, sorted by source."""
        return self._out_targets

    @property
    def in_offsets(self) -> np.ndarray:
        """In-edge offsets, length ``num_vertices + 1``."""
        return self._in_offsets

    @property
    def in_sources(self) -> np.ndarray:
        """Concatenated in-neighbor ids, sorted by destination."""
        return self._in_sources

    @property
    def out_weights(self) -> Optional[np.ndarray]:
        """Weights aligned with :attr:`out_targets` (``None`` if unweighted)."""
        return self._out_weights

    @property
    def in_weights(self) -> Optional[np.ndarray]:
        """Weights aligned with :attr:`in_sources` (``None`` if unweighted)."""
        return self._in_weights

    def fingerprint(self) -> str:
        """Content hash of the graph's structural arrays (memoized).

        A blake2b digest over the out-direction CSR arrays, the weight
        array (when present), the vertex count and the directedness
        flag. The in-direction arrays are derived deterministically
        from the out direction, so they add no information. Two graphs
        with equal fingerprints produce byte-identical memory traces
        for the same (algorithm, kwargs, cores, chunk, reorder)
        tuple — this is the graph component of the trace-store cache
        key (:mod:`repro.store`).
        """
        if self._fingerprint is None:
            h = hashlib.blake2b(digest_size=16)
            h.update(
                f"csr/v1:{self._num_vertices}:{int(self._directed)}:"
                f"{int(self._out_weights is not None)}".encode()
            )
            h.update(np.ascontiguousarray(self._out_offsets).tobytes())
            h.update(np.ascontiguousarray(self._out_targets).tobytes())
            if self._out_weights is not None:
                h.update(np.ascontiguousarray(self._out_weights).tobytes())
            self._fingerprint = h.hexdigest()
        return self._fingerprint

    # ------------------------------------------------------------------
    # Per-vertex accessors
    # ------------------------------------------------------------------
    def out_degree(self, v: int) -> int:
        """Out-degree of vertex ``v``."""
        self._check_vertex(v)
        return int(self._out_offsets[v + 1] - self._out_offsets[v])

    def in_degree(self, v: int) -> int:
        """In-degree of vertex ``v``."""
        self._check_vertex(v)
        return int(self._in_offsets[v + 1] - self._in_offsets[v])

    def out_degrees(self) -> np.ndarray:
        """Vector of all out-degrees."""
        return np.diff(self._out_offsets)

    def in_degrees(self) -> np.ndarray:
        """Vector of all in-degrees."""
        return np.diff(self._in_offsets)

    def out_neighbors(self, v: int) -> np.ndarray:
        """Out-neighbor ids of ``v`` (a read-only CSR slice)."""
        self._check_vertex(v)
        return self._out_targets[self._out_offsets[v] : self._out_offsets[v + 1]]

    def in_neighbors(self, v: int) -> np.ndarray:
        """In-neighbor ids of ``v`` (a read-only CSR slice)."""
        self._check_vertex(v)
        return self._in_sources[self._in_offsets[v] : self._in_offsets[v + 1]]

    def out_edge_range(self, v: int) -> Tuple[int, int]:
        """Half-open index range of ``v``'s out-edges in :attr:`out_targets`."""
        self._check_vertex(v)
        return int(self._out_offsets[v]), int(self._out_offsets[v + 1])

    def in_edge_range(self, v: int) -> Tuple[int, int]:
        """Half-open index range of ``v``'s in-edges in :attr:`in_sources`."""
        self._check_vertex(v)
        return int(self._in_offsets[v]), int(self._in_offsets[v + 1])

    # ------------------------------------------------------------------
    # Whole-graph transforms
    # ------------------------------------------------------------------
    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate ``(src, dst)`` over all stored arcs."""
        for v in range(self._num_vertices):
            lo, hi = self._out_offsets[v], self._out_offsets[v + 1]
            for t in self._out_targets[lo:hi]:
                yield v, int(t)

    def edge_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(src, dst)`` arrays for all stored arcs."""
        src = np.repeat(np.arange(self._num_vertices, dtype=np.int64), self.out_degrees())
        return src, self._out_targets.copy()

    def relabel(self, new_ids: Sequence[int]) -> "CSRGraph":
        """Return a copy with vertex ``v`` renamed to ``new_ids[v]``.

        ``new_ids`` must be a permutation of ``0 .. num_vertices - 1``.
        This is the primitive underlying every reordering algorithm in
        :mod:`repro.graph.reorder`.
        """
        perm = np.asarray(new_ids, dtype=np.int64)
        if perm.shape != (self._num_vertices,):
            raise GraphError(
                f"relabel permutation must have length {self._num_vertices}, got {perm.shape}"
            )
        seen = np.zeros(self._num_vertices, dtype=bool)
        if len(perm):
            if perm.min() < 0 or perm.max() >= self._num_vertices:
                raise GraphError("relabel ids out of range")
            seen[perm] = True
        if not seen.all():
            raise GraphError("relabel permutation is not a bijection")
        if self._directed:
            src, dst = self.edge_arrays()
            w = self._out_weights.copy() if self._out_weights is not None else None
        else:
            # Rebuild from each undirected edge once (src <= dst arbitrary
            # canonicalisation via stored arcs where src appears first).
            src, dst, w = self._undirected_edge_arrays()
        return CSRGraph(
            self._num_vertices, perm[src], perm[dst], weights=w, directed=self._directed
        )

    def _undirected_edge_arrays(
        self,
    ) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
        """Recover one arc per undirected edge (keep ``src <= dst``)."""
        src, dst = self.edge_arrays()
        keep = src <= dst
        w = self._out_weights[keep] if self._out_weights is not None else None
        return src[keep], dst[keep], w

    def as_undirected(self) -> "CSRGraph":
        """Return a symmetric (undirected) version of this graph.

        Required by CC, TC and KC, which Ligra runs on symmetric graphs.
        """
        if not self._directed:
            return self
        src, dst = self.edge_arrays()
        # Deduplicate parallel arcs that would otherwise double up.
        lo = np.minimum(src, dst)
        hi = np.maximum(src, dst)
        keys = lo * self._num_vertices + hi
        _, idx = np.unique(keys, return_index=True)
        return CSRGraph(
            self._num_vertices, lo[idx], hi[idx], directed=False
        )

    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < self._num_vertices:
            raise GraphError(
                f"vertex {v} out of range [0, {self._num_vertices - 1}]"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "directed" if self._directed else "undirected"
        return (
            f"CSRGraph({kind}, |V|={self._num_vertices}, arcs={self.num_edges},"
            f" weighted={self.weighted})"
        )


def from_edges(
    edges: Iterable[Tuple[int, int]],
    num_vertices: Optional[int] = None,
    directed: bool = True,
) -> CSRGraph:
    """Build a :class:`CSRGraph` from an iterable of ``(src, dst)`` pairs.

    If ``num_vertices`` is omitted it is inferred as ``max id + 1``.
    """
    pairs = list(edges)
    if pairs:
        src, dst = zip(*pairs)
    else:
        src, dst = (), ()
    if num_vertices is None:
        num_vertices = (max(max(src, default=-1), max(dst, default=-1)) + 1) if pairs else 0
    return CSRGraph(num_vertices, src, dst, directed=directed)
