"""Graph slicing / segmentation (paper Section VII).

When a graph's hot-vertex property array does not fit in the
scratchpads, the paper discusses two slicing strategies:

2) **Plain slicing** — partition the *destination* vertex range into
   slices small enough that each slice's whole vtxProp fits on chip;
   process one slice at a time (each slice sees only the edges whose
   destination falls in it) and merge results at the end.

3) **Power-law-aware slicing** — size slices so that only the vtxProp
   of each slice's top ~20% most-connected vertices must fit, which the
   paper reports reduces the slice count by up to 5x.

Both are implemented here over the reordered graph; the slice objects
carry the edge subsets so the Ligra engine can run per-slice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.errors import GraphError
from repro.graph.csr import CSRGraph
from repro.graph.degree import TOP_VERTEX_FRACTION

__all__ = ["GraphSlice", "slice_graph", "slice_graph_power_law", "num_slices_required"]


@dataclass(frozen=True)
class GraphSlice:
    """One destination-range slice of a graph.

    ``vertex_lo``/``vertex_hi`` bound the destination vertices this
    slice owns (half-open). ``graph`` contains only the arcs whose
    destination falls in that range; source vertices keep their global
    ids so per-slice results can be merged directly.
    """

    index: int
    vertex_lo: int
    vertex_hi: int
    graph: CSRGraph

    @property
    def num_owned_vertices(self) -> int:
        """Number of destination vertices owned by this slice."""
        return self.vertex_hi - self.vertex_lo


def _slice_by_ranges(graph: CSRGraph, bounds: List[int]) -> List[GraphSlice]:
    src, dst = graph.edge_arrays()
    weights = graph.out_weights
    slices: List[GraphSlice] = []
    for i in range(len(bounds) - 1):
        lo, hi = bounds[i], bounds[i + 1]
        mask = (dst >= lo) & (dst < hi)
        w = weights[mask] if weights is not None else None
        sub = CSRGraph(
            graph.num_vertices, src[mask], dst[mask], weights=w, directed=True
        )
        slices.append(GraphSlice(index=i, vertex_lo=lo, vertex_hi=hi, graph=sub))
    return slices


def slice_graph(graph: CSRGraph, vertices_per_slice: int) -> List[GraphSlice]:
    """Plain slicing: equal destination-vertex ranges of the given size."""
    if vertices_per_slice <= 0:
        raise GraphError(
            f"vertices_per_slice must be > 0, got {vertices_per_slice}"
        )
    n = graph.num_vertices
    bounds = list(range(0, n, vertices_per_slice)) + [n]
    if len(bounds) < 2:
        bounds = [0, n]
    return _slice_by_ranges(graph, bounds)


def slice_graph_power_law(
    graph: CSRGraph,
    hot_capacity: int,
    hot_fraction: float = TOP_VERTEX_FRACTION,
) -> List[GraphSlice]:
    """Power-law-aware slicing (paper's approach 3).

    Sizes each slice so that its top ``hot_fraction`` of vertices — the
    only part that must live in scratchpads — numbers at most
    ``hot_capacity``. Because only 20% of each slice needs on-chip
    storage, slices are ~``1/hot_fraction`` (5x) larger than plain
    slices of the same scratchpad budget.
    """
    if hot_capacity <= 0:
        raise GraphError(f"hot_capacity must be > 0, got {hot_capacity}")
    if not 0.0 < hot_fraction <= 1.0:
        raise GraphError(f"hot_fraction must be in (0, 1], got {hot_fraction}")
    vertices_per_slice = max(1, int(hot_capacity / hot_fraction))
    return slice_graph(graph, vertices_per_slice)


def num_slices_required(
    num_vertices: int,
    hot_capacity: int,
    power_law_aware: bool,
    hot_fraction: float = TOP_VERTEX_FRACTION,
) -> int:
    """Slice count needed for a graph of ``num_vertices`` (paper's 5x claim).

    With plain slicing every slice's full vtxProp must fit
    (``hot_capacity`` vertices per slice); with power-law-aware slicing
    only the hot 20% must, multiplying slice capacity by
    ``1/hot_fraction``.
    """
    if hot_capacity <= 0:
        raise GraphError(f"hot_capacity must be > 0, got {hot_capacity}")
    per_slice = hot_capacity if not power_law_aware else int(hot_capacity / hot_fraction)
    per_slice = max(per_slice, 1)
    return max(1, -(-num_vertices // per_slice))


def merge_slice_results(results: List[np.ndarray], slices: List[GraphSlice]) -> np.ndarray:
    """Merge per-slice vtxProp arrays back into one global array.

    Each slice contributes the values of the destination vertices it
    owns; all arrays must be full-length (``num_vertices``).
    """
    if len(results) != len(slices):
        raise GraphError(
            f"got {len(results)} results for {len(slices)} slices"
        )
    if not slices:
        raise GraphError("cannot merge an empty slice list")
    merged = np.array(results[0], copy=True)
    for res, sl in zip(results, slices):
        if len(res) != len(merged):
            raise GraphError("slice results have inconsistent lengths")
        merged[sl.vertex_lo : sl.vertex_hi] = res[sl.vertex_lo : sl.vertex_hi]
    return merged
