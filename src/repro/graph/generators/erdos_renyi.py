"""Erdős–Rényi random-graph generator.

Uniform random graphs have a binomial (not power-law) degree
distribution; they serve as a second non-power-law control alongside
the road networks when evaluating how much of OMEGA's benefit comes
from connectivity skew.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import GraphError
from repro.graph.csr import CSRGraph

__all__ = ["erdos_renyi_graph"]


def erdos_renyi_graph(
    num_vertices: int,
    num_edges: int,
    seed: Optional[int] = None,
    directed: bool = True,
    weighted: bool = False,
) -> CSRGraph:
    """Generate a G(n, m)-style random graph with ``num_edges`` arcs.

    Endpoints are sampled uniformly at random; self-loops are permitted
    (they occur in the paper's raw web-crawl datasets too) and parallel
    edges are not removed, matching the multigraph nature of raw R-MAT
    output.
    """
    if num_vertices <= 0:
        raise GraphError(f"num_vertices must be > 0, got {num_vertices}")
    if num_edges < 0:
        raise GraphError(f"num_edges must be >= 0, got {num_edges}")
    rng = np.random.default_rng(seed)
    src = rng.integers(0, num_vertices, size=num_edges)
    dst = rng.integers(0, num_vertices, size=num_edges)
    weights = (
        rng.integers(1, 64, size=num_edges).astype(np.float64) if weighted else None
    )
    return CSRGraph(num_vertices, src, dst, weights=weights, directed=directed)
