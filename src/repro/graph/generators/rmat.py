"""R-MAT recursive-matrix graph generator.

R-MAT (Chakrabarti, Zhan, Faloutsos, 2004) recursively subdivides the
adjacency matrix into quadrants with probabilities ``(a, b, c, d)``.
With the default skew (``a=0.57, b=0.19, c=0.19, d=0.05``, the Graph500
parameters) the resulting degree distribution follows a power law,
which is exactly the structural property OMEGA exploits. The paper's
``rMat`` dataset (2M vertices, 25M edges) is one of its power-law
workloads; we regenerate it here at configurable scale.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import GraphError
from repro.graph.csr import CSRGraph

__all__ = ["rmat_graph"]


def rmat_graph(
    scale: int,
    edge_factor: int = 12,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: Optional[int] = None,
    weighted: bool = False,
    directed: bool = True,
) -> CSRGraph:
    """Generate an R-MAT graph with ``2**scale`` vertices.

    Parameters
    ----------
    scale:
        log2 of the number of vertices.
    edge_factor:
        Average out-degree; ``num_edges = edge_factor * 2**scale``.
    a, b, c:
        Quadrant probabilities; ``d = 1 - a - b - c`` must be positive.
    seed:
        Seed for reproducible generation.
    weighted:
        Attach uniform-random edge weights in ``[1, 64)`` (integers),
        matching the common SSSP setup.
    directed:
        Emit a directed graph (the paper's rMat dataset is directed).
    """
    if scale < 0:
        raise GraphError(f"scale must be >= 0, got {scale}")
    if edge_factor <= 0:
        raise GraphError(f"edge_factor must be > 0, got {edge_factor}")
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0 or max(a, b, c, d) > 1:
        raise GraphError(f"invalid quadrant probabilities a={a} b={b} c={c} d={d}")

    rng = np.random.default_rng(seed)
    num_vertices = 1 << scale
    num_edges = edge_factor * num_vertices

    src = np.zeros(num_edges, dtype=np.int64)
    dst = np.zeros(num_edges, dtype=np.int64)
    # At each of the `scale` levels, choose a quadrant for every edge.
    p_right = b + d  # probability the column bit is 1 overall...
    del p_right  # (computed per-level below conditioned on the row bit)
    for _ in range(scale):
        r = rng.random(num_edges)
        # Row bit set iff we land in quadrants c or d.
        row_bit = r >= a + b
        # Column bit conditioned on the row bit.
        col_r = rng.random(num_edges)
        top_col = col_r >= a / (a + b)  # within top half, quadrant b
        bot_col = col_r >= c / (c + d) if (c + d) > 0 else np.ones(num_edges, bool)
        col_bit = np.where(row_bit, bot_col, top_col)
        src = (src << 1) | row_bit
        dst = (dst << 1) | col_bit

    weights = rng.integers(1, 64, size=num_edges).astype(np.float64) if weighted else None
    return CSRGraph(num_vertices, src, dst, weights=weights, directed=directed)
