"""Road-network-like graph generator.

The paper's non-power-law controls (roadNet-CA, roadNet-PA,
Western-USA) are planar road networks: near-uniform low degree,
enormous diameter, no connectivity skew. We synthesize the same shape
with a 2D lattice whose nodes are connected to their grid neighbors,
perturbed by removing a fraction of edges (dead ends) and adding a few
diagonal shortcuts (highways), which matches the observed degree
distribution of road graphs (mean degree ~2.5-3, max degree ~8).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import GraphError
from repro.graph.csr import CSRGraph

__all__ = ["road_graph"]


def road_graph(
    width: int,
    height: int,
    drop_fraction: float = 0.1,
    shortcut_fraction: float = 0.02,
    seed: Optional[int] = None,
    weighted: bool = False,
) -> CSRGraph:
    """Generate an undirected road-like lattice of ``width x height`` nodes.

    Parameters
    ----------
    width, height:
        Lattice dimensions; the graph has ``width * height`` vertices.
    drop_fraction:
        Fraction of lattice edges removed at random (dead-end streets).
    shortcut_fraction:
        Number of extra diagonal edges, as a fraction of lattice edges.
    seed:
        Seed for reproducibility.
    weighted:
        Attach integer edge weights in ``[1, 64)`` (road lengths).
    """
    if width <= 0 or height <= 0:
        raise GraphError(f"lattice dimensions must be positive, got {width}x{height}")
    if not 0.0 <= drop_fraction < 1.0:
        raise GraphError(f"drop_fraction must be in [0, 1), got {drop_fraction}")
    if shortcut_fraction < 0:
        raise GraphError(f"shortcut_fraction must be >= 0, got {shortcut_fraction}")

    rng = np.random.default_rng(seed)
    n = width * height
    ids = np.arange(n).reshape(height, width)

    horiz_src = ids[:, :-1].ravel()
    horiz_dst = ids[:, 1:].ravel()
    vert_src = ids[:-1, :].ravel()
    vert_dst = ids[1:, :].ravel()
    src = np.concatenate([horiz_src, vert_src])
    dst = np.concatenate([horiz_dst, vert_dst])

    keep = rng.random(len(src)) >= drop_fraction
    src, dst = src[keep], dst[keep]

    num_shortcuts = int(shortcut_fraction * len(src))
    if num_shortcuts:
        rows = rng.integers(0, height - 1, size=num_shortcuts)
        cols = rng.integers(0, width - 1, size=num_shortcuts)
        sc_src = ids[rows, cols]
        sc_dst = ids[rows + 1, cols + 1]
        src = np.concatenate([src, sc_src])
        dst = np.concatenate([dst, sc_dst])

    weights = rng.integers(1, 64, size=len(src)).astype(np.float64) if weighted else None
    return CSRGraph(n, src, dst, weights=weights, directed=False)
