"""Barabási–Albert preferential-attachment generator.

The paper (Section II) cites Barabási and Albert's "preferential
attachment" as the mechanism behind the abundance of power-law graphs:
a new vertex joining a graph most likely connects to an already popular
vertex. This generator implements that process directly and is used to
synthesize the social-network-like dataset stand-ins (orkut, lj, ...).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import GraphError
from repro.graph.csr import CSRGraph

__all__ = ["barabasi_albert_graph"]


def barabasi_albert_graph(
    num_vertices: int,
    edges_per_vertex: int,
    seed: Optional[int] = None,
    directed: bool = True,
    weighted: bool = False,
    hubward_fraction: float = 0.8,
) -> CSRGraph:
    """Generate a preferential-attachment graph.

    Each new vertex attaches ``edges_per_vertex`` edges to existing
    vertices chosen proportionally to their current degree (implemented
    with the standard repeated-endpoints trick: sampling uniformly from
    the list of all prior edge endpoints is equivalent to sampling
    proportionally to degree).

    For ``directed=True``, ``hubward_fraction`` of the edges point at
    the preferentially chosen (popular) endpoint and the rest point
    away from it. This keeps the in-degree connectivity skew near the
    levels the paper's Table I reports for social graphs (~60-85% of
    in-edges on the top 20% of vertices) while the hub-outgoing share
    makes forward traversals reach a large component instead of only a
    vertex's "ancestors".
    """
    m = edges_per_vertex
    if m <= 0:
        raise GraphError(f"edges_per_vertex must be > 0, got {m}")
    if num_vertices <= m:
        raise GraphError(
            f"num_vertices ({num_vertices}) must exceed edges_per_vertex ({m})"
        )
    rng = np.random.default_rng(seed)

    src = np.empty((num_vertices - m - 1) * m + m, dtype=np.int64)
    dst = np.empty_like(src)

    # Seed clique-ish start: vertex m connects to all of 0..m-1.
    src[:m] = m
    dst[:m] = np.arange(m)
    # `endpoints` holds one entry per attachment target so far; sampling
    # uniformly from it is degree-proportional sampling.
    endpoints = list(range(m))
    pos = m
    for v in range(m + 1, num_vertices):
        # Sample m distinct targets degree-proportionally (with simple
        # rejection to avoid parallel edges).
        chosen: set = set()
        while len(chosen) < m:
            t = endpoints[int(rng.integers(0, len(endpoints)))]
            chosen.add(t)
        for t in chosen:
            src[pos] = v
            dst[pos] = t
            pos += 1
            endpoints.append(t)
            endpoints.append(v)
    if directed:
        if not 0.0 <= hubward_fraction <= 1.0:
            raise GraphError(
                f"hubward_fraction must be in [0, 1], got {hubward_fraction}"
            )
        # src currently holds the new vertex, dst the popular endpoint;
        # flip the minority of edges to point out of the hubs.
        flip = rng.random(len(src)) >= hubward_fraction
        src, dst = np.where(flip, dst, src), np.where(flip, src, dst)
    weights = (
        rng.integers(1, 64, size=len(src)).astype(np.float64) if weighted else None
    )
    return CSRGraph(num_vertices, src, dst, weights=weights, directed=directed)
