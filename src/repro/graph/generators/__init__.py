"""Synthetic graph generators used to stand in for the paper's datasets.

Power-law families (the "natural graphs" OMEGA targets):

- :func:`rmat_graph` — R-MAT recursive matrix (Graph500 parameters).
- :func:`barabasi_albert_graph` — preferential attachment.

Non-power-law controls:

- :func:`road_graph` — planar road-network lattice (roadNet/USA stand-in).
- :func:`erdos_renyi_graph` — uniform random graph.
"""

from repro.graph.generators.barabasi_albert import barabasi_albert_graph
from repro.graph.generators.erdos_renyi import erdos_renyi_graph
from repro.graph.generators.rmat import rmat_graph
from repro.graph.generators.road import road_graph

__all__ = [
    "barabasi_albert_graph",
    "erdos_renyi_graph",
    "rmat_graph",
    "road_graph",
]
