"""Graph substrate: CSR container, generators, analytics, reordering.

Public entry points:

- :class:`~repro.graph.csr.CSRGraph` and :func:`~repro.graph.csr.from_edges`
- generators in :mod:`repro.graph.generators`
- Table I analytics in :mod:`repro.graph.degree`
- Section VI reordering in :mod:`repro.graph.reorder`
- Section VII slicing in :mod:`repro.graph.slicing`
- dataset stand-ins in :mod:`repro.graph.datasets`
"""

from repro.graph.csr import CSRGraph, from_edges
from repro.graph.datasets import DATASETS, DatasetSpec, dataset_names, load_dataset
from repro.graph.dynamic import (
    DynamicGraph,
    hot_set,
    hot_set_overlap,
    preferential_edges,
    uniform_edges,
)
from repro.graph.degree import (
    GraphCharacterization,
    characterize,
    is_power_law,
    top_fraction_connectivity,
)
from repro.graph.generators import (
    barabasi_albert_graph,
    erdos_renyi_graph,
    rmat_graph,
    road_graph,
)
from repro.graph.reorder import (
    reorder_by_degree,
    reorder_nth_element,
    reorder_slashburn,
    reorder_top_fraction,
)

__all__ = [
    "CSRGraph",
    "from_edges",
    "DATASETS",
    "DatasetSpec",
    "dataset_names",
    "load_dataset",
    "DynamicGraph",
    "hot_set",
    "hot_set_overlap",
    "preferential_edges",
    "uniform_edges",
    "GraphCharacterization",
    "characterize",
    "is_power_law",
    "top_fraction_connectivity",
    "barabasi_albert_graph",
    "erdos_renyi_graph",
    "rmat_graph",
    "road_graph",
    "reorder_by_degree",
    "reorder_nth_element",
    "reorder_slashburn",
    "reorder_top_fraction",
]
