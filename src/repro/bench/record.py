"""Machine-readable bench trajectories: ``BENCH_<name>.json`` files.

The benchmark harness prints tables and archives them as text under
``benchmarks/results/``, which is fine for humans and useless for
trend analysis — the perf trajectory across PRs was effectively
``[]``. This module gives each bench a machine-readable trajectory:
one ``BENCH_<name>.json`` file at the repo root holding a JSON array
of run-ledger-format entries (:func:`repro.obs.ledger.make_entry`,
``kind="bench"``), appended once per invocation. The array shape (vs
the ledger's JSONL) keeps the file a single valid JSON document that
plotting and CI tooling can load directly, while each element stays
interchangeable with ``repro history`` ledger entries.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Optional

from repro.obs.ledger import make_entry

__all__ = [
    "BENCH_MANIFEST_SCHEMA",
    "bench_manifest",
    "record_bench",
    "load_bench",
    "bench_baseline_context",
]

#: Schema tag of the minimal manifest a bench entry wraps.
BENCH_MANIFEST_SCHEMA = "omega-repro/bench-manifest/v1"


def bench_manifest(name: str, metrics: Dict,
                   context: Optional[Dict] = None) -> Dict:
    """A minimal manifest-shaped record for one bench invocation.

    ``metrics`` holds the bench's headline numbers (throughputs,
    speedups); ``context`` optionally records what was measured
    (workload, backend, rounds). The shape deliberately mirrors the
    run manifest's top-level fields so ledger tooling can treat both
    uniformly.
    """
    return {
        "schema": BENCH_MANIFEST_SCHEMA,
        "bench": name,
        "metrics": dict(metrics),
        "context": dict(context or {}),
    }


def record_bench(name: str, metrics: Dict, repo_root,
                 context: Optional[Dict] = None) -> str:
    """Append one bench entry to ``<repo_root>/BENCH_<name>.json``.

    Returns the file path written. The file is a JSON array of
    ledger-format entries; a missing or unreadable file starts a fresh
    trajectory rather than failing the bench.
    """
    path = os.path.join(os.fspath(repo_root), f"BENCH_{name}.json")
    entries = []
    try:
        with open(path) as f:
            doc = json.load(f)
        if isinstance(doc, list):
            entries = doc
    except (OSError, json.JSONDecodeError):
        entries = []
    entries.append(
        make_entry(bench_manifest(name, metrics, context), kind="bench")
    )
    with open(path, "w") as f:
        json.dump(entries, f, indent=2, sort_keys=True)
        f.write("\n")
    return path


def load_bench(name: str, repo_root) -> list:
    """Read ``<repo_root>/BENCH_<name>.json`` as a list of entries.

    Returns ``[]`` when the trajectory file is missing or unreadable —
    benches treat an empty trajectory as "first run" and fall back to
    their built-in reference constants.
    """
    path = os.path.join(os.fspath(repo_root), f"BENCH_{name}.json")
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError):
        return []
    return doc if isinstance(doc, list) else []


def bench_baseline_context(name: str, repo_root, key: str) -> Optional[Dict]:
    """The earliest recorded ``context[key]`` in a bench trajectory.

    Benches use this to seed their reference floor from the ledger
    itself (the first entry's context travels forward unchanged), so
    regenerating the trajectory re-anchors cleanly and hand-edited
    constants cannot silently drift from what was actually measured.
    Returns ``None`` when the trajectory is empty or no entry carries
    ``key``.
    """
    for entry in load_bench(name, repo_root):
        manifest = entry.get("manifest", entry)
        context = manifest.get("context") or {}
        if key in context:
            return context[key]
    return None
