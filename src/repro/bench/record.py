"""Machine-readable bench trajectories: ``BENCH_<name>.json`` files.

The benchmark harness prints tables and archives them as text under
``benchmarks/results/``, which is fine for humans and useless for
trend analysis — the perf trajectory across PRs was effectively
``[]``. This module gives each bench a machine-readable trajectory:
one ``BENCH_<name>.json`` file at the repo root holding a JSON array
of run-ledger-format entries (:func:`repro.obs.ledger.make_entry`,
``kind="bench"``), appended once per invocation. The array shape (vs
the ledger's JSONL) keeps the file a single valid JSON document that
plotting and CI tooling can load directly, while each element stays
interchangeable with ``repro history`` ledger entries.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Optional

from repro.obs.ledger import make_entry

__all__ = ["BENCH_MANIFEST_SCHEMA", "bench_manifest", "record_bench"]

#: Schema tag of the minimal manifest a bench entry wraps.
BENCH_MANIFEST_SCHEMA = "omega-repro/bench-manifest/v1"


def bench_manifest(name: str, metrics: Dict,
                   context: Optional[Dict] = None) -> Dict:
    """A minimal manifest-shaped record for one bench invocation.

    ``metrics`` holds the bench's headline numbers (throughputs,
    speedups); ``context`` optionally records what was measured
    (workload, backend, rounds). The shape deliberately mirrors the
    run manifest's top-level fields so ledger tooling can treat both
    uniformly.
    """
    return {
        "schema": BENCH_MANIFEST_SCHEMA,
        "bench": name,
        "metrics": dict(metrics),
        "context": dict(context or {}),
    }


def record_bench(name: str, metrics: Dict, repo_root,
                 context: Optional[Dict] = None) -> str:
    """Append one bench entry to ``<repo_root>/BENCH_<name>.json``.

    Returns the file path written. The file is a JSON array of
    ledger-format entries; a missing or unreadable file starts a fresh
    trajectory rather than failing the bench.
    """
    path = os.path.join(os.fspath(repo_root), f"BENCH_{name}.json")
    entries = []
    try:
        with open(path) as f:
            doc = json.load(f)
        if isinstance(doc, list):
            entries = doc
    except (OSError, json.JSONDecodeError):
        entries = []
    entries.append(
        make_entry(bench_manifest(name, metrics, context), kind="bench")
    )
    with open(path, "w") as f:
        json.dump(entries, f, indent=2, sort_keys=True)
        f.write("\n")
    return path
