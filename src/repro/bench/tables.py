"""Plain-text table and series printers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures as
rows on stdout; these helpers keep the formatting consistent so that
the bench output can be diffed against EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence, Union

__all__ = ["format_table", "print_table", "print_series", "print_heatmap"]

Number = Union[int, float]


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.3g}" if abs(value) < 1000 else f"{value:,.0f}"
    return str(value)


def format_table(rows: Sequence[Mapping[str, object]], title: str = "") -> str:
    """Render dict-rows as an aligned text table."""
    if not rows:
        return f"== {title} ==\n(no rows)\n" if title else "(no rows)\n"
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    cells = [[_fmt(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(row[i]) for row in cells))
        for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(f"== {title} ==")
    lines.append("  ".join(col.ljust(w) for col, w in zip(columns, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines) + "\n"


def print_table(rows: Sequence[Mapping[str, object]], title: str = "") -> None:
    """Print dict-rows as an aligned text table."""
    print()
    print(format_table(rows, title), end="")


def print_series(
    series: Mapping[str, Number], title: str = "", unit: str = ""
) -> None:
    """Print a one-dimensional label → value series (a bar chart's data)."""
    print()
    if title:
        print(f"== {title} ==")
    width = max((len(k) for k in series), default=0)
    for key, value in series.items():
        suffix = f" {unit}" if unit else ""
        print(f"{key.ljust(width)}  {_fmt(value)}{suffix}")


def print_heatmap(
    table: Mapping[str, Mapping[str, Number]],
    title: str = "",
    col_order: Iterable[str] = (),
) -> None:
    """Print a 2-D label map (the Fig 5 heatmap's data)."""
    cols = list(col_order) or sorted(
        {c for row in table.values() for c in row}
    )
    rows: List[Dict[str, object]] = []
    for name, row in table.items():
        out: Dict[str, object] = {"": name}
        out.update({c: row.get(c, "") for c in cols})
        rows.append(out)
    print_table(rows, title)
