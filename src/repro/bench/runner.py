"""Shared experiment runner for the benchmark harness.

Centralizes dataset loading (with caching), the default benchmark
scale, and the algorithm × dataset sweep most figures are built from.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import SimConfig
from repro.core.report import Comparison
from repro.core.system import compare_systems
from repro.graph.csr import CSRGraph
from repro.graph.datasets import DatasetSpec, load_dataset

__all__ = [
    "BENCH_SCALE",
    "FIG14_WORKLOADS",
    "PAGERANK_DATASETS",
    "bench_graph",
    "run_comparison",
    "sweep",
]

#: Dataset scale used by the benchmark harness (1.0 = registry defaults).
BENCH_SCALE = 1.0

#: Datasets used by the PageRank-only figures (Figs 15-17, 21) —
#: Table I order, road controls included, twitter excluded (the paper
#: defers it to the high-level model of Fig 20).
PAGERANK_DATASETS: Tuple[str, ...] = (
    "sd", "rmat", "orkut", "wiki", "lj", "ic", "rPA", "rCA",
)

#: (algorithm, dataset) pairs for the Fig 14 speedup sweep, mirroring
#: the paper's workload selection: CC/TC/KC run on the undirected ap,
#: SSSP on weighted graphs, the rest across the power-law sets plus
#: the road controls.
FIG14_WORKLOADS: Tuple[Tuple[str, str], ...] = (
    ("pagerank", "sd"), ("pagerank", "rmat"), ("pagerank", "orkut"),
    ("pagerank", "wiki"), ("pagerank", "lj"), ("pagerank", "ic"),
    ("pagerank", "rPA"), ("pagerank", "rCA"),
    ("bfs", "sd"), ("bfs", "rmat"), ("bfs", "wiki"), ("bfs", "lj"),
    ("bfs", "rPA"), ("bfs", "rCA"),
    ("sssp", "sd"), ("sssp", "rmat"), ("sssp", "lj"),
    ("bc", "sd"), ("bc", "lj"),
    ("radii", "sd"), ("radii", "lj"),
    ("cc", "ap"), ("tc", "ap"), ("kc", "ap"),
)

_GRAPH_CACHE: Dict[Tuple[str, float, bool], Tuple[CSRGraph, DatasetSpec]] = {}


def bench_graph(
    name: str,
    scale: float = BENCH_SCALE,
    weighted: bool = False,
    undirected: bool = False,
) -> Tuple[CSRGraph, DatasetSpec]:
    """Load (and cache) a dataset stand-in for benchmarking."""
    key = (name, scale, weighted)
    if key not in _GRAPH_CACHE:
        _GRAPH_CACHE[key] = load_dataset(name, scale=scale, weighted=weighted)
    graph, spec = _GRAPH_CACHE[key]
    if undirected and graph.directed:
        graph = graph.as_undirected()
    return graph, spec


def run_comparison(
    algorithm: str,
    dataset: str,
    scale: float = BENCH_SCALE,
    baseline_config: Optional[SimConfig] = None,
    omega_config: Optional[SimConfig] = None,
    **kwargs,
) -> Comparison:
    """Run one baseline-vs-OMEGA comparison for a named workload."""
    from repro.algorithms.registry import ALGORITHMS

    info = ALGORITHMS[algorithm]
    graph, _ = bench_graph(
        dataset,
        scale=scale,
        weighted=info.requires_weights,
        undirected=info.requires_undirected,
    )
    return compare_systems(
        graph,
        algorithm,
        baseline_config=baseline_config,
        omega_config=omega_config,
        dataset=dataset,
        **kwargs,
    )


def sweep(
    workloads: Sequence[Tuple[str, str]],
    scale: float = BENCH_SCALE,
    **kwargs,
) -> List[Comparison]:
    """Run a list of (algorithm, dataset) comparisons."""
    return [
        run_comparison(alg, ds, scale=scale, **kwargs) for alg, ds in workloads
    ]
