"""Benchmark-harness helpers: dataset cache, sweeps, table printers."""

from repro.bench.parallel import (
    SWEEP_ROW_FIELDS,
    SweepTask,
    build_grid,
    run_sweep,
    run_task,
    save_rows_csv,
    save_rows_json,
)
from repro.bench.runner import (
    BENCH_SCALE,
    FIG14_WORKLOADS,
    PAGERANK_DATASETS,
    bench_graph,
    run_comparison,
    sweep,
)
from repro.bench.tables import format_table, print_heatmap, print_series, print_table

__all__ = [
    "BENCH_SCALE",
    "FIG14_WORKLOADS",
    "PAGERANK_DATASETS",
    "SWEEP_ROW_FIELDS",
    "SweepTask",
    "bench_graph",
    "build_grid",
    "run_comparison",
    "run_sweep",
    "run_task",
    "save_rows_csv",
    "save_rows_json",
    "sweep",
    "format_table",
    "print_heatmap",
    "print_series",
    "print_table",
]
