"""Benchmark-harness helpers: dataset cache, sweeps, table printers."""

from repro.bench.runner import (
    BENCH_SCALE,
    FIG14_WORKLOADS,
    PAGERANK_DATASETS,
    bench_graph,
    run_comparison,
    sweep,
)
from repro.bench.tables import format_table, print_heatmap, print_series, print_table

__all__ = [
    "BENCH_SCALE",
    "FIG14_WORKLOADS",
    "PAGERANK_DATASETS",
    "bench_graph",
    "run_comparison",
    "sweep",
    "format_table",
    "print_heatmap",
    "print_series",
    "print_table",
]
