"""Process-parallel sweep executor.

A sweep is a (datasets × algorithms × backends) grid of independent
:func:`repro.core.system.run_system` calls. Each run is pure Python and
GIL-bound, so the executor fans the grid across a
:class:`concurrent.futures.ProcessPoolExecutor`; workers deduplicate
the expensive trace-generation stage through the shared persistent
trace store (:mod:`repro.store`) — the first worker to need a trace
generates and caches it, everyone else loads it.

Determinism: results are returned in task order regardless of worker
completion order, every simulated counter is a pure function of the
task (synthetic datasets are seeded), and host-time fields are clearly
separated — so a 4-worker sweep and a serial sweep produce identical
rows apart from timings.

The ``repro sweep`` CLI subcommand is a thin veneer over
:func:`run_sweep`; library users can build custom grids with
:func:`build_grid` or hand-rolled :class:`SweepTask` lists.
"""

from __future__ import annotations

import csv
import json
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import SimulationError

__all__ = [
    "SweepTask",
    "build_grid",
    "run_sweep",
    "run_task",
    "parse_prune_spec",
    "prune_reason",
    "save_rows_json",
    "save_rows_csv",
    "SWEEP_ROW_FIELDS",
]

#: Column order for CSV export (and the stable key order of row dicts).
SWEEP_ROW_FIELDS = (
    "dataset",
    "algorithm",
    "backend",
    "scale",
    "num_cores",
    "cycles",
    "l2_hit_rate",
    "last_level_hit_rate",
    "onchip_traffic_bytes",
    "dram_bytes",
    "energy_nj",
    "trace_events",
    "trace_bytes",
    "trace_cache",
    "replay_seconds",
    "run_seconds",
    "pruned",
)

#: Comparison operators a prune clause may use, longest first so the
#: two-character forms win the scan.
_PRUNE_OPS = (
    ("<=", lambda a, b: a <= b),
    (">=", lambda a, b: a >= b),
    ("<", lambda a, b: a < b),
    (">", lambda a, b: a > b),
)


def parse_prune_spec(spec: str) -> List[tuple]:
    """Parse an ``--estimate-prune`` interest band.

    The spec is a comma-separated conjunction of clauses, each
    ``metric OP value`` with ``OP`` one of ``<``, ``<=``, ``>``,
    ``>=`` — e.g. ``"l2_hit_rate<0.5,dram_bytes>1e6"``. A sweep cell
    is *kept* when its predicted metrics satisfy every clause and
    pruned (replay skipped) otherwise. Metric names are the keys of
    :meth:`repro.memsim.estimate.ReplayEstimate.as_dict`.
    """
    from repro.memsim.estimate import ReplayEstimate

    known = ReplayEstimate().as_dict().keys()
    rules = []
    for clause in spec.split(","):
        clause = clause.strip()
        if not clause:
            continue
        for op, fn in _PRUNE_OPS:
            if op in clause:
                metric, _, raw = clause.partition(op)
                metric = metric.strip()
                if metric not in known:
                    raise SimulationError(
                        f"unknown prune metric {metric!r};"
                        f" known: {', '.join(sorted(known))}"
                    )
                try:
                    value = float(raw)
                except ValueError:
                    raise SimulationError(
                        f"bad prune threshold in {clause!r}"
                    ) from None
                rules.append((metric, op, value, fn))
                break
        else:
            raise SimulationError(
                f"bad prune clause {clause!r} (want 'metric<value' or"
                " 'metric>value')"
            )
    if not rules:
        raise SimulationError("empty --estimate-prune spec")
    return rules


def prune_reason(metrics: Dict, rules: Sequence[tuple]) -> Optional[str]:
    """First violated clause, as a human-readable string; None = keep."""
    for metric, op, value, fn in rules:
        have = metrics[metric]
        if not fn(have, value):
            return f"{metric}={have:g} !{op} {value:g}"
    return None


@dataclass(frozen=True)
class SweepTask:
    """One cell of a sweep grid."""

    dataset: str
    algorithm: str
    backend: str
    scale: float = 1.0
    num_cores: int = 16
    chunk_size: int = 32


def build_grid(
    datasets: Sequence[str],
    algorithms: Sequence[str],
    backends: Sequence[str],
    scale: float = 1.0,
    num_cores: int = 16,
    chunk_size: int = 32,
) -> List[SweepTask]:
    """The full (datasets × algorithms × backends) grid, datasets-major.

    The ordering is deterministic and matches the nesting of the
    ``repro sweep`` output table.
    """
    return [
        SweepTask(
            dataset=d, algorithm=a, backend=b, scale=scale,
            num_cores=num_cores, chunk_size=chunk_size,
        )
        for a in algorithms
        for d in datasets
        for b in backends
    ]


def run_task(
    task: SweepTask,
    cache=None,
    prune: Optional[str] = None,
    context=None,
) -> Dict:
    """Execute one sweep cell and flatten the report into a row dict.

    Module-level (and taking only picklable arguments) so it can cross
    a process boundary; ``cache`` follows
    :func:`repro.store.resolve_store` semantics but must be a path or
    ``None``/``False`` when used with worker processes. ``context`` is
    an optional :class:`repro.core.context.RunContext`; when given it
    is authoritative and ``cache`` is ignored — the sweep executor
    resolves ambient state exactly once in the parent and ships the
    value here, so workers never re-derive it from the environment.

    ``prune`` is an :func:`parse_prune_spec` interest band: when given,
    the cell is first estimated analytically
    (:func:`repro.core.system.estimate_system` — exact route shares,
    reuse-gap cache model, no replay) and skipped when the prediction
    falls outside the band. A pruned row keeps the identity columns,
    carries ``pruned`` = the violated clause and ``estimate`` = the
    full prediction, and leaves the measured columns ``None``.
    """
    import time

    from repro.algorithms.registry import ALGORITHMS
    from repro.core.context import RunContext
    from repro.core.system import (
        default_backend_config,
        estimate_system,
        run_system,
    )
    from repro.graph.datasets import load_dataset

    info = ALGORITHMS.get(task.algorithm)
    if info is None:
        raise SimulationError(
            f"unknown algorithm {task.algorithm!r};"
            f" available: {', '.join(ALGORITHMS)}"
        )
    if context is None:
        context = RunContext.from_env(cache=cache)
    rules = parse_prune_spec(prune) if prune else None
    start = time.perf_counter()
    graph, _spec = load_dataset(
        task.dataset, scale=task.scale, weighted=info.requires_weights
    )
    if info.requires_undirected and graph.directed:
        graph = graph.as_undirected()
    config = default_backend_config(task.backend, num_cores=task.num_cores)
    if rules is not None:
        est = estimate_system(
            graph,
            task.algorithm,
            config,
            dataset=task.dataset,
            backend=task.backend,
            chunk_size=task.chunk_size,
            context=context,
        )
        metrics = est.as_dict()
        reason = prune_reason(metrics, rules)
        if reason is not None:
            return {
                "dataset": task.dataset,
                "algorithm": task.algorithm,
                "backend": task.backend,
                "scale": task.scale,
                "num_cores": task.num_cores,
                "cycles": None,
                "l2_hit_rate": None,
                "last_level_hit_rate": None,
                "onchip_traffic_bytes": None,
                "dram_bytes": None,
                "energy_nj": None,
                "trace_events": est.events,
                "trace_bytes": None,
                "trace_cache": "est",
                "replay_seconds": 0.0,
                "run_seconds": time.perf_counter() - start,
                "pruned": reason,
                "estimate": metrics,
            }
    report = run_system(
        graph,
        task.algorithm,
        config,
        dataset=task.dataset,
        backend=task.backend,
        chunk_size=task.chunk_size,
        context=context,
    )
    run_seconds = time.perf_counter() - start
    cache_state = "off"
    if report.trace_cache and report.trace_cache.get("enabled"):
        cache_state = "hit" if report.trace_cache.get("hit") else "miss"
    return {
        "dataset": task.dataset,
        "algorithm": task.algorithm,
        "backend": task.backend,
        "scale": task.scale,
        "num_cores": task.num_cores,
        "cycles": report.cycles,
        "l2_hit_rate": report.stats.l2_hit_rate,
        "last_level_hit_rate": report.stats.last_level_hit_rate,
        "onchip_traffic_bytes": report.stats.onchip_traffic_bytes,
        "dram_bytes": report.stats.dram_bytes,
        "energy_nj": report.energy.total_nj,
        "trace_events": report.trace_events,
        "trace_bytes": report.trace_bytes,
        "trace_cache": cache_state,
        "replay_seconds": report.replay_seconds,
        "run_seconds": run_seconds,
        "pruned": "",
    }


def _run_task_in_worker(payload) -> Dict:
    """Worker-side shim: unpack ``(task dict, context spec, prune spec)``.

    The context spec is the :meth:`RunContext.to_spec` dict the parent
    serialized — workers rebuild the run context from the shipped
    *values* and never consult their own environment.
    """
    from repro.core.context import RunContext

    task_dict, context_spec, prune = payload
    context = RunContext.from_spec(context_spec)
    return run_task(SweepTask(**task_dict), prune=prune, context=context)


def run_sweep(
    tasks: Sequence[SweepTask],
    workers: int = 1,
    cache=None,
    progress: Optional[Callable[[str], None]] = None,
    prune: Optional[str] = None,
) -> List[Dict]:
    """Run a sweep grid, optionally across worker processes.

    ``workers <= 1`` runs inline (no pool, easiest to debug);
    ``workers > 1`` fans tasks across a ``ProcessPoolExecutor``. Rows
    come back in task order either way. ``cache`` follows
    :func:`repro.store.resolve_store` semantics; the parent resolves
    it (and the rest of the ambient state) into one
    :class:`repro.core.context.RunContext` up front, and workers
    receive that context's :meth:`~repro.core.context.RunContext.to_spec`
    serialization — a live store handle crosses the process boundary
    as its directory path, which is exactly how workers deduplicate
    generation work. ``prune`` is an estimate-prune spec
    applied to every cell (see :func:`run_task`); pass it here rather
    than pre-filtering so pruned cells still appear as rows.
    """
    from repro.core.context import RunContext

    if prune:
        parse_prune_spec(prune)  # fail fast, before any work runs
    tasks = list(tasks)
    # Ambient state is resolved exactly once, here in the parent; every
    # cell (inline or in a worker process) runs under this one value.
    context = RunContext.from_env(cache=cache)
    if workers <= 1 or len(tasks) <= 1:
        rows = []
        for i, task in enumerate(tasks):
            rows.append(run_task(task, prune=prune, context=context))
            if progress is not None:
                progress(
                    f"[{i + 1}/{len(tasks)}] {task.algorithm}/{task.dataset}"
                    f"/{task.backend}"
                )
        return rows

    payloads = [(asdict(task), context.to_spec(), prune) for task in tasks]
    rows: List[Optional[Dict]] = [None] * len(tasks)
    with ProcessPoolExecutor(max_workers=workers) as pool:
        done = 0
        # Ordered map keeps rows deterministic; chunksize 1 balances the
        # grid's very uneven cell costs across workers.
        for i, row in enumerate(pool.map(_run_task_in_worker, payloads)):
            rows[i] = row
            done += 1
            if progress is not None:
                task = tasks[i]
                progress(
                    f"[{done}/{len(tasks)}] {task.algorithm}/{task.dataset}"
                    f"/{task.backend}"
                )
    return rows  # type: ignore[return-value]


def save_rows_json(rows: Sequence[Dict], path) -> None:
    """Write sweep rows as a JSON document (stable key order)."""
    doc = {
        "schema": "omega-repro/sweep-results/v1",
        "rows": [
            {k: row[k] for k in SWEEP_ROW_FIELDS if k in row} for row in rows
        ],
    }
    parent = os.path.dirname(os.fspath(path))
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w") as f:
        json.dump(doc, f, indent=2)


def save_rows_csv(rows: Sequence[Dict], path) -> None:
    """Write sweep rows as CSV with the :data:`SWEEP_ROW_FIELDS` columns."""
    parent = os.path.dirname(os.fspath(path))
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", newline="") as f:
        writer = csv.DictWriter(
            f, fieldnames=list(SWEEP_ROW_FIELDS), extrasaction="ignore"
        )
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
