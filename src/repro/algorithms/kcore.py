"""k-Core: maximal subgraph of minimum degree >= k (peeling).

Iteratively removes vertices of degree < k, atomically decrementing
their neighbors' degrees (Table II: "signed add", low atomic fraction
because most rounds remove few vertices). ``run_kcore`` extracts one
k-core; ``run_coreness`` runs the full peeling decomposition.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import SimulationError
from repro.graph.csr import CSRGraph
from repro.algorithms.common import AlgorithmResult, make_engine, require_undirected
from repro.ligra.atomics import AtomicOp, scatter_atomic
from repro.ligra.vertex_subset import VertexSubset

__all__ = ["run_kcore", "run_coreness", "coreness_reference"]


def run_kcore(
    graph: CSRGraph,
    k: Optional[int] = None,
    num_cores: int = 16,
    chunk_size: Optional[int] = None,
    trace: bool = True,
) -> AlgorithmResult:
    """Compute membership of the k-core (``in_core`` boolean array).

    ``k`` defaults to the graph's mean degree, which makes the peeling
    phase touch a substantial fraction of the vertices (a degenerate
    ``k`` below the minimum degree would remove nothing and produce an
    empty trace).
    """
    require_undirected(graph, "KC")
    n = graph.num_vertices
    if k is None:
        k = max(2, int(graph.num_edges / n)) if n else 2
    if k < 0:
        raise SimulationError(f"k must be >= 0, got {k}")
    engine = make_engine(graph, num_cores, chunk_size, trace)
    degree = engine.alloc_prop("degree", np.int32)
    degree.values[:] = graph.out_degrees().astype(np.int32)
    alive = np.ones(n, dtype=bool)

    frontier = VertexSubset(n, dense=alive & (degree.values < k))
    rounds = 0
    while frontier:
        rounds += 1
        doomed = frontier.to_sparse()
        alive[doomed] = False

        def decrement(srcs, dsts, _weights) -> np.ndarray:
            if len(srcs) == 0:
                return srcs
            live = alive[dsts]
            d = dsts[live]
            if len(d) == 0:
                return d
            before = degree.values[np.unique(d)] >= k
            scatter_atomic(
                AtomicOp.SINT_ADD,
                degree.values,
                d,
                np.full(len(d), -1, dtype=np.int32),
            )
            uniq = np.unique(d)
            # Newly sub-k vertices form the next peel round.
            newly = uniq[(degree.values[uniq] < k) & before]
            return newly

        frontier = engine.edge_map(
            frontier,
            decrement,
            src_props=[degree],
            dst_props=[degree],
            direction="out",
            output="auto",
        )
        engine.stats.iterations = rounds

    return AlgorithmResult(
        name="kcore",
        engine=engine,
        values={"in_core": alive.copy(), "k": np.int64(k)},
        iterations=rounds,
    )


def run_coreness(
    graph: CSRGraph,
    num_cores: int = 16,
    chunk_size: Optional[int] = None,
    trace: bool = True,
) -> AlgorithmResult:
    """Full coreness decomposition: per-vertex maximum k-core membership."""
    require_undirected(graph, "KC")
    n = graph.num_vertices
    engine = make_engine(graph, num_cores, chunk_size, trace)
    degree = engine.alloc_prop("degree", np.int32)
    degree.values[:] = graph.out_degrees().astype(np.int32)
    coreness = np.zeros(n, dtype=np.int64)
    alive = np.ones(n, dtype=bool)
    rounds = 0
    k = 0
    while alive.any():
        k += 1
        while True:
            doomed = np.flatnonzero(alive & (degree.values < k))
            if len(doomed) == 0:
                break
            rounds += 1
            coreness[doomed] = k - 1
            alive[doomed] = False
            frontier = VertexSubset(n, ids=doomed)

            def decrement(srcs, dsts, _weights) -> np.ndarray:
                if len(srcs) == 0:
                    return srcs
                d = dsts[alive[dsts]]
                if len(d):
                    scatter_atomic(
                        AtomicOp.SINT_ADD,
                        degree.values,
                        d,
                        np.full(len(d), -1, dtype=np.int32),
                    )
                return np.unique(d)

            engine.edge_map(
                frontier,
                decrement,
                src_props=[degree],
                dst_props=[degree],
                direction="out",
                output="none",
            )
    engine.stats.iterations = rounds
    return AlgorithmResult(
        name="coreness",
        engine=engine,
        values={"coreness": coreness},
        iterations=rounds,
    )


def coreness_reference(graph: CSRGraph) -> np.ndarray:
    """Sequential peeling oracle for coreness."""
    n = graph.num_vertices
    deg = graph.out_degrees().astype(np.int64).copy()
    alive = np.ones(n, dtype=bool)
    coreness = np.zeros(n, dtype=np.int64)
    k = 0
    remaining = n
    while remaining:
        k += 1
        changed = True
        while changed:
            changed = False
            for v in np.flatnonzero(alive & (deg < k)):
                coreness[v] = k - 1
                alive[v] = False
                remaining -= 1
                changed = True
                for w in graph.out_neighbors(int(v)):
                    if alive[int(w)]:
                        deg[int(w)] -= 1
    return coreness
