"""Algorithm registry and Table II metadata.

Each entry records the paper's Table II characterization — atomic
operation type, qualitative atomic/random access fractions, vtxProp
entry size and count, active-list usage, and whether the source
vertex's vtxProp is read (source-buffer eligibility) — plus a uniform
runner so the benchmark harness can sweep algorithms by name.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Optional, Tuple, Union

if TYPE_CHECKING:  # pragma: no cover
    from repro.ligra.trace import TraceBuilder

from repro.errors import SimulationError
from repro.graph.csr import CSRGraph
from repro.algorithms.bc import run_bc
from repro.algorithms.bfs import run_bfs
from repro.algorithms.cc import run_cc
from repro.algorithms.common import AlgorithmResult
from repro.algorithms.kcore import run_kcore
from repro.algorithms.pagerank import run_pagerank
from repro.algorithms.radii import run_radii
from repro.algorithms.sssp import run_sssp
from repro.algorithms.tc import run_tc
from repro.ligra.atomics import AtomicOp
from repro.obs import get_tracer

__all__ = ["AlgorithmInfo", "ALGORITHMS", "algorithm_names", "run_algorithm"]


@dataclass(frozen=True)
class AlgorithmInfo:
    """Static characterization of one algorithm (one Table II column)."""

    name: str
    display_name: str
    atomic_ops: Tuple[AtomicOp, ...]
    pct_atomic: str  # 'high' | 'medium' | 'low'
    pct_random: str
    vtxprop_entry_bytes: int
    num_vtxprops: int
    uses_active_list: bool
    reads_src_vtxprop: bool
    requires_undirected: bool
    requires_weights: bool

    def as_row(self) -> dict:
        """Dictionary form matching the paper's Table II rows."""
        return {
            "algorithm": self.display_name,
            "atomic operation type": " & ".join(
                op.paper_label for op in self.atomic_ops
            ),
            "%atomic operation": self.pct_atomic,
            "%random access": self.pct_random,
            "vtxProp entry size": self.vtxprop_entry_bytes,
            "#vtxProp": self.num_vtxprops,
            "active-list": "yes" if self.uses_active_list else "no",
            "read src vtx's vtxProp": "yes" if self.reads_src_vtxprop else "no",
        }


_RUNNERS: Dict[str, Callable[..., AlgorithmResult]] = {
    "pagerank": run_pagerank,
    "bfs": run_bfs,
    "sssp": run_sssp,
    "bc": run_bc,
    "radii": run_radii,
    "cc": run_cc,
    "tc": run_tc,
    "kc": run_kcore,
}

ALGORITHMS: Dict[str, AlgorithmInfo] = {
    info.name: info
    for info in [
        AlgorithmInfo(
            name="pagerank", display_name="PageRank",
            atomic_ops=(AtomicOp.FP_ADD,),
            pct_atomic="high", pct_random="high",
            vtxprop_entry_bytes=8, num_vtxprops=1,
            uses_active_list=False, reads_src_vtxprop=False,
            requires_undirected=False, requires_weights=False,
        ),
        AlgorithmInfo(
            name="bfs", display_name="BFS",
            atomic_ops=(AtomicOp.UINT_CAS,),
            pct_atomic="low", pct_random="high",
            vtxprop_entry_bytes=4, num_vtxprops=1,
            uses_active_list=True, reads_src_vtxprop=False,
            requires_undirected=False, requires_weights=False,
        ),
        AlgorithmInfo(
            name="sssp", display_name="SSSP",
            atomic_ops=(AtomicOp.SINT_MIN,),
            pct_atomic="high", pct_random="high",
            vtxprop_entry_bytes=8, num_vtxprops=2,
            uses_active_list=True, reads_src_vtxprop=True,
            requires_undirected=False, requires_weights=True,
        ),
        AlgorithmInfo(
            name="bc", display_name="BC",
            atomic_ops=(AtomicOp.FP_ADD_DEP,),
            pct_atomic="medium", pct_random="high",
            vtxprop_entry_bytes=8, num_vtxprops=1,
            uses_active_list=True, reads_src_vtxprop=True,
            requires_undirected=False, requires_weights=False,
        ),
        AlgorithmInfo(
            name="radii", display_name="Radii",
            atomic_ops=(AtomicOp.OR, AtomicOp.SINT_MIN),
            pct_atomic="high", pct_random="high",
            vtxprop_entry_bytes=12, num_vtxprops=3,
            uses_active_list=True, reads_src_vtxprop=True,
            requires_undirected=False, requires_weights=False,
        ),
        AlgorithmInfo(
            name="cc", display_name="CC",
            atomic_ops=(AtomicOp.UINT_MIN,),
            pct_atomic="high", pct_random="high",
            vtxprop_entry_bytes=8, num_vtxprops=2,
            uses_active_list=True, reads_src_vtxprop=True,
            requires_undirected=True, requires_weights=False,
        ),
        AlgorithmInfo(
            name="tc", display_name="TC",
            atomic_ops=(AtomicOp.SINT_ADD,),
            pct_atomic="low", pct_random="low",
            vtxprop_entry_bytes=8, num_vtxprops=1,
            uses_active_list=False, reads_src_vtxprop=False,
            requires_undirected=True, requires_weights=False,
        ),
        AlgorithmInfo(
            name="kc", display_name="KC",
            atomic_ops=(AtomicOp.SINT_ADD,),
            pct_atomic="low", pct_random="low",
            vtxprop_entry_bytes=4, num_vtxprops=1,
            uses_active_list=False, reads_src_vtxprop=False,
            requires_undirected=True, requires_weights=False,
        ),
    ]
}


def algorithm_names() -> Tuple[str, ...]:
    """All algorithm keys in Table II order."""
    return tuple(ALGORITHMS)


def run_algorithm(
    name: str,
    graph: CSRGraph,
    num_cores: int = 16,
    chunk_size: Optional[int] = None,
    trace: Union[bool, "TraceBuilder"] = True,
    **kwargs,
) -> AlgorithmResult:
    """Run a registered algorithm by name with uniform arguments.

    ``trace`` may be a :class:`~repro.ligra.trace.TraceBuilder`
    instance (e.g. a spooling builder) to append into instead of a
    bool.

    Graph requirements (symmetry, weights) are checked up front with a
    clear error instead of failing mid-run.
    """
    info = ALGORITHMS.get(name)
    if info is None:
        raise SimulationError(
            f"unknown algorithm {name!r}; available: {', '.join(ALGORITHMS)}"
        )
    if info.requires_undirected and graph.directed:
        raise SimulationError(
            f"{info.display_name} requires an undirected graph"
        )
    if info.requires_weights and not graph.weighted:
        raise SimulationError(f"{info.display_name} requires edge weights")
    runner = _RUNNERS[name]
    with get_tracer().span(
        "algorithm", cat="ligra", algorithm=name,
        vertices=graph.num_vertices, edges=graph.num_edges,
    ) as span:
        result = runner(
            graph, num_cores=num_cores, chunk_size=chunk_size, trace=trace,
            **kwargs,
        )
        span.annotate(iterations=result.iterations)
    return result
