"""Graph algorithms over the Ligra-like engine (paper Table II set).

All eight workloads from the paper's evaluation: PageRank, BFS, SSSP,
BC, Radii, CC, TC and KC, each with a plain-numpy reference oracle for
testing. Use :func:`repro.algorithms.registry.run_algorithm` to run by
name with uniform arguments.
"""

from repro.algorithms.bc import bc_reference_num_paths, run_bc
from repro.algorithms.bfs import bfs_reference_levels, run_bfs
from repro.algorithms.cc import cc_reference, run_cc
from repro.algorithms.common import AlgorithmResult
from repro.algorithms.kcore import coreness_reference, run_coreness, run_kcore
from repro.algorithms.pagerank import pagerank_reference, run_pagerank
from repro.algorithms.radii import radii_reference, run_radii
from repro.algorithms.registry import (
    ALGORITHMS,
    AlgorithmInfo,
    algorithm_names,
    run_algorithm,
)
from repro.algorithms.sssp import run_sssp, sssp_reference
from repro.algorithms.tc import run_tc, tc_reference

__all__ = [
    "AlgorithmResult",
    "ALGORITHMS",
    "AlgorithmInfo",
    "algorithm_names",
    "run_algorithm",
    "run_pagerank",
    "pagerank_reference",
    "run_bfs",
    "bfs_reference_levels",
    "run_sssp",
    "sssp_reference",
    "run_bc",
    "bc_reference_num_paths",
    "run_radii",
    "radii_reference",
    "run_cc",
    "cc_reference",
    "run_tc",
    "tc_reference",
    "run_kcore",
    "run_coreness",
    "coreness_reference",
]
