"""Graph radii estimation via multi-source BFS with bitmasks.

Ligra's Radii estimates the graph's maximum radius by running BFS from
a sample of sources simultaneously, each source owning one bit of a
visited bitmask; the atomic operation is the bitwise OR that unions a
source's mask into the destination (Table II: "or & signed min", three
vtxProp structures of 4 bytes each — visited, next_visited, radii —
the paper's 12-byte-per-vertex worst case). The paper uses a sample
size of 16.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import SimulationError
from repro.graph.csr import CSRGraph
from repro.algorithms.common import AlgorithmResult, make_engine
from repro.ligra.atomics import AtomicOp, scatter_atomic
from repro.ligra.vertex_subset import VertexSubset

__all__ = ["run_radii", "radii_reference"]


def run_radii(
    graph: CSRGraph,
    sample_size: int = 16,
    num_cores: int = 16,
    chunk_size: Optional[int] = None,
    trace: bool = True,
    seed: int = 0,
) -> AlgorithmResult:
    """Estimate per-vertex eccentricity lower bounds and the max radius."""
    n = graph.num_vertices
    if n == 0:
        raise SimulationError("radii requires a non-empty graph")
    k = min(sample_size, n, 32)
    rng = np.random.default_rng(seed)
    sources = rng.choice(n, size=k, replace=False).astype(np.int64)

    engine = make_engine(graph, num_cores, chunk_size, trace)
    visited = engine.alloc_prop("visited", np.uint32)
    next_visited = engine.alloc_prop("next_visited", np.uint32)
    radii = engine.alloc_prop("radii", np.int32, fill=-1)

    visited.values[sources] = np.uint32(1) << np.arange(k, dtype=np.uint32)
    next_visited.values[:] = visited.values
    radii.values[sources] = 0

    frontier = VertexSubset(n, ids=sources)
    rounds = 0
    while frontier:
        rounds += 1
        current_round = rounds

        def spread(srcs, dsts, _weights) -> np.ndarray:
            if len(srcs) == 0:
                return srcs
            changed = scatter_atomic(
                AtomicOp.OR, next_visited.values, dsts, visited.values[srcs]
            )
            # A vertex whose mask grew this round has its radius bound
            # raised to the current round (the "signed min" half of the
            # paper's compound op, expressed as last-writer assignment).
            grew = changed[next_visited.values[changed] != visited.values[changed]]
            radii.values[grew] = current_round
            return grew

        frontier = engine.edge_map(
            frontier,
            spread,
            src_props=[visited],
            dst_props=[next_visited, radii],
            direction="out",
            output="auto",
        )

        # End-of-round synchronization: visited <- next_visited.
        def sync(ids: np.ndarray) -> None:
            visited.values[ids] = next_visited.values[ids]

        engine.vertex_map(
            VertexSubset.full(n),
            sync,
            read_props=[next_visited],
            write_props=[visited],
        )
        engine.stats.iterations = rounds

    estimate = int(radii.values.max()) if n else 0
    return AlgorithmResult(
        name="radii",
        engine=engine,
        values={
            "radii": radii.values.copy().astype(np.int64),
            "sources": sources,
            "max_radius": np.int64(estimate),
        },
        iterations=rounds,
    )


def radii_reference(graph: CSRGraph, sources: np.ndarray) -> int:
    """Max over sampled sources of BFS eccentricity (test oracle)."""
    from repro.algorithms.bfs import bfs_reference_levels

    best = 0
    for s in sources:
        levels = bfs_reference_levels(graph, int(s))
        reachable = levels[levels >= 0]
        if len(reachable):
            best = max(best, int(reachable.max()))
    return best
