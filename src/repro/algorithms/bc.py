"""Betweenness centrality, forward ("first") pass.

The paper simulates only BC's first pass (Section X workloads note):
a level-synchronous forward sweep from the root that counts the number
of shortest paths through each vertex (``num_paths``, accumulated with
an atomic floating-point add guarded by the level check — Table II
lists BC's atomic as "min & fp add" with a medium atomic fraction).
The backward dependency pass is also provided for completeness.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.errors import SimulationError
from repro.graph.csr import CSRGraph
from repro.algorithms.common import AlgorithmResult, default_source, make_engine
from repro.ligra.atomics import AtomicOp, scatter_atomic
from repro.ligra.vertex_subset import VertexSubset

__all__ = ["run_bc", "bc_reference_num_paths"]


def run_bc(
    graph: CSRGraph,
    source: Optional[int] = None,
    num_cores: int = 16,
    chunk_size: Optional[int] = None,
    trace: bool = True,
    backward_pass: bool = False,
) -> AlgorithmResult:
    """BC forward pass from ``source``; optionally the backward pass too.

    Returns ``num_paths`` (shortest-path counts) and ``level``; with
    ``backward_pass=True`` also ``dependency`` and ``centrality``.
    """
    n = graph.num_vertices
    if source is None:
        source = default_source(graph)
    if not 0 <= source < n:
        raise SimulationError(f"source {source} out of range [0, {n - 1}]")
    engine = make_engine(graph, num_cores, chunk_size, trace)

    num_paths = engine.alloc_prop("num_paths", np.float64)
    # The level/visited check lives in framework memory (cache path):
    # Table II lists BC with a single 8-byte vtxProp (num_paths).
    level = engine.alloc_prop("level", np.int32, fill=-1, vtxprop=False)
    num_paths.values[source] = 1.0
    level.values[source] = 0

    frontier = VertexSubset.single(n, source)
    frontiers: List[VertexSubset] = [frontier]
    rounds = 0
    while frontier:
        rounds += 1
        current_round = rounds

        def accumulate(srcs, dsts, _weights) -> np.ndarray:
            if len(srcs) == 0:
                return srcs
            # Only propagate into vertices not settled at an earlier level.
            open_mask = (level.values[dsts] < 0) | (
                level.values[dsts] == current_round
            )
            s, d = srcs[open_mask], dsts[open_mask]
            if len(d) == 0:
                return d
            scatter_atomic(
                AtomicOp.FP_ADD_DEP, num_paths.values, d, num_paths.values[s]
            )
            newly = np.unique(d[level.values[d] < 0])
            level.values[newly] = current_round
            return newly

        frontier = engine.edge_map(
            frontier,
            accumulate,
            src_props=[num_paths, level],
            dst_props=[num_paths],
            direction="out",
            output="auto",
        )
        engine.stats.iterations = rounds
        if frontier:
            frontiers.append(frontier)

    values = {
        "num_paths": num_paths.values.copy(),
        "level": level.values.copy().astype(np.int64),
    }

    if backward_pass:
        dependency = engine.alloc_prop("dependency", np.float64)
        inv_paths = np.where(
            num_paths.values > 0, 1.0 / np.maximum(num_paths.values, 1e-300), 0.0
        )
        # Walk levels deepest-first; for each DAG edge (s at L) -> (d at
        # L+1) accumulate d's dependency share back into s. The event
        # pattern (per-edge src reads + one atomic RMW) matches Ligra's
        # transposed edgeMap.
        for sub in reversed(frontiers[:-1]):

            def back(srcs, dsts, _weights) -> np.ndarray:
                if len(srcs) == 0:
                    return srcs
                mask = level.values[dsts] == level.values[srcs] + 1
                s, d = srcs[mask], dsts[mask]
                if len(s) == 0:
                    return s
                contrib = (
                    num_paths.values[s] * inv_paths[d] * (1.0 + dependency.values[d])
                )
                scatter_atomic(AtomicOp.FP_ADD_DEP, dependency.values, s, contrib)
                return np.unique(s)

            engine.edge_map(
                sub,
                back,
                src_props=[num_paths, dependency],
                dst_props=[dependency],
                direction="out",
                output="none",
            )
        centrality = dependency.values.copy()
        centrality[source] = 0.0
        values["dependency"] = dependency.values.copy()
        values["centrality"] = centrality

    return AlgorithmResult(
        name="bc", engine=engine, values=values, iterations=rounds
    )


def bc_reference_num_paths(graph: CSRGraph, source: int) -> np.ndarray:
    """Sequential Brandes forward pass (path counts), the test oracle."""
    n = graph.num_vertices
    paths = np.zeros(n, dtype=np.float64)
    level = np.full(n, -1, dtype=np.int64)
    paths[source] = 1.0
    level[source] = 0
    queue = [source]
    while queue:
        nxt = []
        for u in queue:
            for v in graph.out_neighbors(u):
                v = int(v)
                if level[v] < 0:
                    level[v] = level[u] + 1
                    nxt.append(v)
                if level[v] == level[u] + 1:
                    paths[v] += paths[u]
        queue = nxt
    return paths
