"""Single-source shortest paths (Bellman-Ford over the frontier).

Matches the paper's Fig 10 pseudo-code: read the source's
``ShortestLen`` (a genuine source-vtxProp read — this is the algorithm
the source vertex buffer is motivated by), add the edge length, and
atomically signed-min it into the destination, tagging the destination
visited. Table II: two vtxProp structures, 8 bytes total.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import SimulationError
from repro.graph.csr import CSRGraph
from repro.algorithms.common import AlgorithmResult, default_source, make_engine
from repro.ligra.atomics import AtomicOp, scatter_atomic
from repro.ligra.vertex_subset import VertexSubset

__all__ = ["run_sssp", "sssp_reference"]

#: Unreachable-distance sentinel (a large value that survives additions).
INF = np.int64(2**40)


def run_sssp(
    graph: CSRGraph,
    source: Optional[int] = None,
    num_cores: int = 16,
    chunk_size: Optional[int] = None,
    trace: bool = True,
    max_rounds: Optional[int] = None,
) -> AlgorithmResult:
    """Shortest path lengths from ``source`` on a weighted graph."""
    if not graph.weighted:
        raise SimulationError("SSSP requires a weighted graph")
    n = graph.num_vertices
    if source is None:
        source = default_source(graph)
    if not 0 <= source < n:
        raise SimulationError(f"source {source} out of range [0, {n - 1}]")
    limit = max_rounds if max_rounds is not None else n
    engine = make_engine(graph, num_cores, chunk_size, trace)

    shortest = engine.alloc_prop("shortest_len", np.int32, fill=np.int32(2**30))
    visited = engine.alloc_prop("visited", np.int32)
    # Keep full-precision distances host-side; the 4-byte prop mirrors
    # Ligra's int storage (Table II: SSSP entry size 8B over 2 props).
    dist = np.full(n, INF, dtype=np.int64)
    dist[source] = 0
    shortest.values[source] = 0
    visited.values[source] = 1

    frontier = VertexSubset.single(n, source)
    rounds = 0
    while frontier and rounds < limit:
        rounds += 1

        def relax(srcs, dsts, weights) -> np.ndarray:
            if len(srcs) == 0:
                return srcs
            cand = dist[srcs] + weights.astype(np.int64)
            changed = scatter_atomic(AtomicOp.SINT_MIN, dist, dsts, cand)
            shortest.values[changed] = np.minimum(
                dist[changed], np.int64(2**30)
            ).astype(np.int32)
            visited.values[changed] = 1
            return changed

        frontier = engine.edge_map(
            frontier,
            relax,
            src_props=[shortest, visited],
            dst_props=[shortest],
            direction="out",
            output="auto",
            use_weights=True,
        )
        engine.stats.iterations = rounds

    return AlgorithmResult(
        name="sssp",
        engine=engine,
        values={"dist": dist, "visited": visited.values.copy()},
        iterations=rounds,
    )


def sssp_reference(graph: CSRGraph, source: int) -> np.ndarray:
    """Dijkstra oracle (heap-based) for correctness tests."""
    import heapq

    n = graph.num_vertices
    dist = np.full(n, INF, dtype=np.int64)
    dist[source] = 0
    heap = [(0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist[u]:
            continue
        lo, hi = graph.out_edge_range(u)
        for idx in range(lo, hi):
            v = int(graph.out_targets[idx])
            w = int(graph.out_weights[idx])
            nd = d + w
            if nd < dist[v]:
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    return dist
