"""Extension algorithms beyond the paper's Table II set.

OMEGA's pitch over fixed-function accelerators is generality: any
vertex-centric algorithm whose update reduces to a simple atomic runs
unmodified. These two kernels — not evaluated in the paper — exercise
that claim end-to-end and double as examples of writing new algorithms
against the engine API:

- **Maximal independent set** (Luby-style): priority-min propagation,
  an ``unsigned min`` PISC op like CC.
- **Label propagation** (semi-supervised community detection): min
  label flooding from seeds, also ``unsigned min``.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import SimulationError
from repro.graph.csr import CSRGraph
from repro.algorithms.common import AlgorithmResult, make_engine, require_undirected
from repro.ligra.atomics import AtomicOp, scatter_atomic
from repro.ligra.vertex_subset import VertexSubset

__all__ = [
    "run_mis",
    "mis_reference_check",
    "run_label_propagation",
    "label_propagation_reference",
]


def run_mis(
    graph: CSRGraph,
    num_cores: int = 16,
    chunk_size: Optional[int] = None,
    trace: bool = True,
    seed: int = 0,
) -> AlgorithmResult:
    """Maximal independent set via Luby's random-priority algorithm.

    Each round, every undecided vertex whose random priority beats all
    undecided neighbors joins the set; its neighbors drop out. The
    per-edge operation is an unsigned-min scatter of priorities —
    PISC-friendly, like CC.
    """
    require_undirected(graph, "MIS")
    n = graph.num_vertices
    engine = make_engine(graph, num_cores, chunk_size, trace)
    rng = np.random.default_rng(seed)

    # Random priorities; ties broken by id (encode id in low bits).
    priority = (
        rng.permutation(n).astype(np.uint32) + 1
    )  # 1..n, unique, 0 reserved
    #: Minimum priority among undecided neighbors, per vertex.
    nbr_min = engine.alloc_prop("nbr_min", np.uint32,
                                fill=np.iinfo(np.uint32).max)
    state = engine.alloc_prop("state", np.uint8)  # 0 undecided 1 in 2 out

    undecided = VertexSubset.full(n)
    rounds = 0
    while undecided and rounds < n:
        rounds += 1
        nbr_min.values[:] = np.iinfo(np.uint32).max

        def push_priorities(srcs, dsts, _weights) -> np.ndarray:
            if len(srcs) == 0:
                return srcs
            live = (state.values[srcs] == 0) & (state.values[dsts] == 0)
            s, d = srcs[live], dsts[live]
            if len(d) == 0:
                return d
            return scatter_atomic(
                AtomicOp.UINT_MIN, nbr_min.values, d, priority[s]
            )

        engine.edge_map(
            undecided,
            push_priorities,
            src_props=[state],
            dst_props=[nbr_min],
            direction="out",
            output="none",
        )

        ids = undecided.to_sparse()

        def decide(active: np.ndarray) -> Optional[np.ndarray]:
            und = active[state.values[active] == 0]
            winners = und[priority[und] < nbr_min.values[und]]
            state.values[winners] = 1
            return None

        engine.vertex_map(
            undecided, decide, read_props=[nbr_min], write_props=[state]
        )

        # Winners' neighbors drop out.
        winners = ids[state.values[ids] == 1]

        def knock_out(srcs, dsts, _weights) -> np.ndarray:
            if len(srcs) == 0:
                return srcs
            fresh = dsts[state.values[dsts] == 0]
            state.values[fresh] = 2
            return np.unique(fresh)

        engine.edge_map(
            VertexSubset(n, ids=winners),
            knock_out,
            src_props=[state],
            dst_props=[state],
            direction="out",
            output="none",
        )
        undecided = VertexSubset(n, ids=ids[state.values[ids] == 0])
        engine.stats.iterations = rounds

    in_set = state.values == 1
    return AlgorithmResult(
        name="mis",
        engine=engine,
        values={"in_set": in_set.copy(), "rounds": np.int64(rounds)},
        iterations=rounds,
    )


def mis_reference_check(graph: CSRGraph, in_set: np.ndarray) -> bool:
    """Verify independence and maximality of a claimed MIS."""
    n = graph.num_vertices
    members = set(np.flatnonzero(in_set).tolist())
    for v in members:
        for w in graph.out_neighbors(v):
            if int(w) != v and int(w) in members:
                return False  # not independent
    for v in range(n):
        if v in members:
            continue
        nbrs = set(int(w) for w in graph.out_neighbors(v))
        if not (nbrs & members):
            return False  # not maximal: v could join
    return True


def run_label_propagation(
    graph: CSRGraph,
    seeds: Sequence[int],
    num_cores: int = 16,
    chunk_size: Optional[int] = None,
    trace: bool = True,
    max_rounds: Optional[int] = None,
) -> AlgorithmResult:
    """Min-label flooding from seed vertices (community detection).

    Seed ``i`` floods label ``i``; every vertex adopts the minimum
    label among labels reaching it (an unsigned-min atomic per edge,
    frontier-driven like CC).
    """
    n = graph.num_vertices
    if not seeds:
        raise SimulationError("label propagation needs at least one seed")
    seeds = [int(s) for s in seeds]
    if min(seeds) < 0 or max(seeds) >= n:
        raise SimulationError(f"seed out of range [0, {n - 1}]")
    limit = max_rounds if max_rounds is not None else n
    engine = make_engine(graph, num_cores, chunk_size, trace)
    unlabeled = np.iinfo(np.uint32).max
    label = engine.alloc_prop("label", np.uint32, fill=unlabeled)
    for community, seed_vertex in enumerate(seeds):
        label.values[seed_vertex] = min(
            label.values[seed_vertex], np.uint32(community)
        )

    frontier = VertexSubset(n, ids=np.array(seeds, dtype=np.int64))
    rounds = 0
    while frontier and rounds < limit:
        rounds += 1

        def push(srcs, dsts, _weights) -> np.ndarray:
            if len(srcs) == 0:
                return srcs
            return scatter_atomic(
                AtomicOp.UINT_MIN, label.values, dsts, label.values[srcs]
            )

        frontier = engine.edge_map(
            frontier,
            push,
            src_props=[label],
            dst_props=[label],
            direction="out",
            output="auto",
        )
        engine.stats.iterations = rounds

    labels = label.values.copy().astype(np.int64)
    labels[labels == unlabeled] = -1
    return AlgorithmResult(
        name="label_propagation",
        engine=engine,
        values={"labels": labels},
        iterations=rounds,
    )


def label_propagation_reference(
    graph: CSRGraph, seeds: Sequence[int]
) -> np.ndarray:
    """Test oracle: ``labels[v]`` is the smallest community whose seed
    reaches ``v`` (the min-flood fixpoint), −1 if no seed reaches it."""
    n = graph.num_vertices
    labels = np.full(n, -1, dtype=np.int64)
    # Ascending communities: the first one to reach a vertex is minimal.
    # A seed already claimed by a smaller community floods nothing new
    # (that community's own flood covers everything reachable from it).
    for community, seed in enumerate(seeds):
        seed = int(seed)
        if labels[seed] != -1 and labels[seed] <= community:
            continue
        labels[seed] = community
        queue = [seed]
        while queue:
            v = queue.pop()
            for w in graph.out_neighbors(v):
                w = int(w)
                if labels[w] == -1 or labels[w] > community:
                    labels[w] = community
                    queue.append(w)
    return labels
