"""Breadth-first search (Ligra-style, with direction optimization).

Assigns a parent to every reachable vertex. The atomic operation is an
unsigned compare-and-swap against the "unvisited" sentinel (Table II:
"unsigned comp."); Ligra checks the destination before attempting the
CAS, so the fraction of *successful* atomics is low even though the
random-access rate is high. The frontier alternates between sparse
forward and dense backward traversal, exercising both of the engine's
edgeMap paths.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import SimulationError
from repro.graph.csr import CSRGraph
from repro.algorithms.common import AlgorithmResult, default_source, make_engine
from repro.ligra.atomics import AtomicOp, scatter_atomic
from repro.ligra.vertex_subset import VertexSubset

__all__ = ["run_bfs", "bfs_reference_levels"]

#: "No parent assigned yet" sentinel (max uint32).
UNVISITED = np.iinfo(np.uint32).max


def run_bfs(
    graph: CSRGraph,
    source: Optional[int] = None,
    num_cores: int = 16,
    chunk_size: Optional[int] = None,
    trace: bool = True,
) -> AlgorithmResult:
    """BFS from ``source``; returns per-vertex ``parent`` (UNVISITED if
    unreachable) and ``level``."""
    n = graph.num_vertices
    if source is None:
        source = default_source(graph)
    if not 0 <= source < n:
        raise SimulationError(f"source {source} out of range [0, {n - 1}]")
    engine = make_engine(graph, num_cores, chunk_size, trace)

    parent = engine.alloc_prop("parent", np.uint32, fill=UNVISITED)
    level = np.full(n, -1, dtype=np.int64)  # host-side bookkeeping only
    parent.values[source] = source
    level[source] = 0

    frontier = VertexSubset.single(n, source)
    rounds = 0
    while frontier:
        rounds += 1

        def visit(srcs, dsts, _weights) -> np.ndarray:
            if len(dsts) == 0:
                return dsts
            changed = scatter_atomic(
                AtomicOp.UINT_CAS, parent.values, dsts, srcs.astype(np.uint32)
            )
            level[changed] = rounds
            return changed

        frontier = engine.edge_map(
            frontier,
            visit,
            src_props=[],
            dst_props=[parent],
            direction="auto",
            output="auto",
        )
        engine.stats.iterations = rounds

    return AlgorithmResult(
        name="bfs",
        engine=engine,
        values={"parent": parent.values.copy(), "level": level},
        iterations=rounds,
    )


def bfs_reference_levels(graph: CSRGraph, source: int) -> np.ndarray:
    """Plain BFS levels (−1 for unreachable), the test oracle."""
    n = graph.num_vertices
    level = np.full(n, -1, dtype=np.int64)
    level[source] = 0
    queue = [source]
    while queue:
        nxt = []
        for u in queue:
            for v in graph.out_neighbors(u):
                v = int(v)
                if level[v] < 0:
                    level[v] = level[u] + 1
                    nxt.append(v)
        queue = nxt
    return level
