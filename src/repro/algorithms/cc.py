"""Connected components by label propagation (Ligra's CC).

Every vertex starts labeled with its own id; each round, active
vertices push their label to neighbors, who atomically take the
unsigned minimum (Table II: "unsigned min", high atomic and random
fractions, two 4-byte vtxProp structures — IDs and prevIDs). Runs on
undirected graphs, per the paper's setup.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.graph.csr import CSRGraph
from repro.algorithms.common import AlgorithmResult, make_engine, require_undirected
from repro.ligra.atomics import AtomicOp, scatter_atomic
from repro.ligra.vertex_subset import VertexSubset

__all__ = ["run_cc", "cc_reference"]


def run_cc(
    graph: CSRGraph,
    num_cores: int = 16,
    chunk_size: Optional[int] = None,
    trace: bool = True,
) -> AlgorithmResult:
    """Label vertices by connected component (minimum reachable id)."""
    require_undirected(graph, "CC")
    n = graph.num_vertices
    engine = make_engine(graph, num_cores, chunk_size, trace)

    ids = engine.alloc_prop("ids", np.uint32)
    prev_ids = engine.alloc_prop("prev_ids", np.uint32)
    ids.values[:] = np.arange(n, dtype=np.uint32)
    prev_ids.values[:] = ids.values

    frontier = VertexSubset.full(n)
    rounds = 0
    while frontier:
        rounds += 1

        def propagate(srcs, dsts, _weights) -> np.ndarray:
            if len(srcs) == 0:
                return srcs
            return scatter_atomic(
                AtomicOp.UINT_MIN, ids.values, dsts, prev_ids.values[srcs]
            )

        frontier = engine.edge_map(
            frontier,
            propagate,
            src_props=[prev_ids],
            dst_props=[ids],
            direction="out",
            output="auto",
        )

        # Snapshot labels of the changed set for the next round.
        def snapshot(active: np.ndarray) -> None:
            prev_ids.values[active] = ids.values[active]

        if frontier:
            engine.vertex_map(
                frontier, snapshot, read_props=[ids], write_props=[prev_ids]
            )
        engine.stats.iterations = rounds

    labels = ids.values.copy().astype(np.int64)
    return AlgorithmResult(
        name="cc",
        engine=engine,
        values={
            "labels": labels,
            "num_components": np.int64(len(np.unique(labels))),
        },
        iterations=rounds,
    )


def cc_reference(graph: CSRGraph) -> np.ndarray:
    """Union-find oracle: per-vertex minimum-id component labels."""
    n = graph.num_vertices
    parent = list(range(n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    src, dst = graph.edge_arrays()
    for u, v in zip(src, dst):
        ru, rv = find(int(u)), find(int(v))
        if ru != rv:
            parent[max(ru, rv)] = min(ru, rv)
    labels = np.fromiter((find(v) for v in range(n)), dtype=np.int64, count=n)
    # Normalize each component to its minimum member id.
    out = np.empty(n, dtype=np.int64)
    for root in np.unique(labels):
        members = np.flatnonzero(labels == root)
        out[members] = members.min()
    return out
