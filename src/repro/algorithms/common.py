"""Shared plumbing for the algorithm implementations."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Union

import numpy as np

from repro.errors import SimulationError
from repro.graph.csr import CSRGraph
from repro.ligra.framework import LigraEngine
from repro.ligra.trace import Trace, TraceBuilder

__all__ = ["AlgorithmResult", "make_engine", "require_undirected", "default_source"]


def default_source(graph: CSRGraph) -> int:
    """Default traversal root: the highest-out-degree vertex.

    Vertex 0 can be a sink in directed graphs (preferential attachment
    points new vertices at old ones), so BFS/SSSP/BC default to the
    vertex most likely to reach a large fraction of the graph — the
    same pragmatic choice graph benchmarks like Graph500 make.
    """
    if graph.num_vertices == 0:
        raise SimulationError("graph has no vertices")
    return int(graph.out_degrees().argmax())


@dataclass
class AlgorithmResult:
    """Outcome of running one algorithm over one graph.

    Carries both the functional answer (``values``: name → per-vertex
    array or scalar) and the instrumented engine, from which the memory
    trace and vtxProp layout can be pulled for simulation.
    """

    name: str
    engine: LigraEngine
    values: Dict[str, np.ndarray]
    iterations: int
    _trace: Optional[Trace] = field(default=None, repr=False)

    @property
    def trace(self) -> Trace:
        """The memory trace produced during the run (built lazily)."""
        if self._trace is None:
            self._trace = self.engine.build_trace()
        return self._trace

    def value(self, key: str) -> np.ndarray:
        """Fetch one named output array."""
        if key not in self.values:
            raise SimulationError(
                f"result {self.name!r} has no value {key!r};"
                f" available: {sorted(self.values)}"
            )
        return self.values[key]


def make_engine(
    graph: CSRGraph,
    num_cores: int,
    chunk_size: Optional[int],
    trace: Union[bool, TraceBuilder],
) -> LigraEngine:
    """Construct the engine all algorithm runners share."""
    return LigraEngine(
        graph, num_cores=num_cores, chunk_size=chunk_size, trace=trace
    )


def require_undirected(graph: CSRGraph, algorithm: str) -> None:
    """CC/TC/KC require symmetric graphs (paper Section X: 'CC and TC
    require symmetric graphs, hence we run them on undirected datasets')."""
    if graph.directed:
        raise SimulationError(
            f"{algorithm} requires an undirected graph; call"
            " graph.as_undirected() first"
        )
