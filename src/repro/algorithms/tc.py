"""Triangle counting by sorted-adjacency intersection.

TC is the paper's compute-bound outlier: edge-list scans dominate
(sequential, cache-friendly), random vtxProp accesses are few, and the
only atomic is a signed add into per-vertex counters — hence OMEGA's
limited speedup on it (Section X-A). We implement the standard
degree-ordered intersection algorithm: orient each undirected edge
from lower- to higher-rank endpoint and intersect out-adjacencies.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.graph.csr import CSRGraph
from repro.algorithms.common import AlgorithmResult, make_engine, require_undirected
from repro.ligra.atomics import AtomicOp, scatter_atomic

__all__ = ["run_tc", "tc_reference"]


def run_tc(
    graph: CSRGraph,
    num_cores: int = 16,
    chunk_size: Optional[int] = None,
    trace: bool = True,
) -> AlgorithmResult:
    """Count triangles; returns the total and per-vertex counts."""
    require_undirected(graph, "TC")
    n = graph.num_vertices
    engine = make_engine(graph, num_cores, chunk_size, trace)
    counts = engine.alloc_prop("tri_count", np.int64)

    # Rank by (degree, id) and keep only low->high oriented arcs; each
    # triangle is then counted exactly once at its lowest-rank corner.
    deg = graph.out_degrees()
    rank = np.lexsort((np.arange(n), deg))
    rank_of = np.empty(n, dtype=np.int64)
    rank_of[rank] = np.arange(n)

    offsets, targets = graph.out_offsets, graph.out_targets
    # Forward adjacency: neighbors with higher rank, sorted by id.
    fwd: list = []
    fwd_offsets = np.zeros(n + 1, dtype=np.int64)
    for v in range(n):
        nbrs = targets[offsets[v] : offsets[v + 1]]
        higher = nbrs[rank_of[nbrs] > rank_of[v]]
        higher = np.unique(higher)
        fwd.append(higher)
        fwd_offsets[v + 1] = fwd_offsets[v] + len(higher)

    total = 0
    tb = engine.trace_builder
    per_vertex = np.zeros(n, dtype=np.int64)
    for v in range(n):
        adj_v = fwd[v]
        if len(adj_v) == 0:
            continue
        core = engine.cores_for_positions(np.array([v]), n)[0]
        if tb.enabled:
            engine.record_offset_reads(core, np.array([v]))
            engine.record_adjacency_reads(
                core, np.arange(offsets[v], offsets[v + 1])
            )
        for w in adj_v:
            common = np.intersect1d(adj_v, fwd[w], assume_unique=True)
            found = len(common)
            if tb.enabled:
                engine.record_offset_reads(core, np.array([w]))
                engine.record_adjacency_reads(
                    core, np.arange(offsets[w], offsets[w + 1])
                )
            if found:
                total += found
                # Atomic per-corner count accumulation (the Table II
                # "signed add"); charged at the triangle corners.
                tri_vertices = np.concatenate(
                    [common, np.full(found, v), np.full(found, w)]
                ).astype(np.int64)
                scatter_atomic(
                    AtomicOp.SINT_ADD,
                    per_vertex,
                    tri_vertices,
                    np.ones(len(tri_vertices), dtype=np.int64),
                )
                if tb.enabled:
                    engine.record_prop_access(
                        core, counts, tri_vertices, write=True, atomic=True
                    )
    counts.values[:] = per_vertex
    engine.stats.iterations = 1
    return AlgorithmResult(
        name="tc",
        engine=engine,
        values={"total": np.int64(total), "per_vertex": per_vertex},
        iterations=1,
    )


def tc_reference(graph: CSRGraph) -> int:
    """Brute-force triangle count oracle (enumerate vertex triples of
    each edge's endpoint neighborhoods)."""
    n = graph.num_vertices
    nbr = [set(int(x) for x in graph.out_neighbors(v) if int(x) != v) for v in range(n)]
    total = 0
    for v in range(n):
        for w in nbr[v]:
            if w > v:
                for u in nbr[v] & nbr[w]:
                    if u > w:
                        total += 1
    return total
