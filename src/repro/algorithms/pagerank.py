"""PageRank over the Ligra-like engine (paper Fig 2 access pattern).

Matches the paper's setup: each thread iterates the out-edges of its
assigned source vertices and atomically accumulates into the
destination's ``next_pagerank`` (floating-point add — the PISC's
costliest operation and its area driver). The source's scaled rank
contribution is precomputed into a *cache-resident* temporary, which is
why Table II lists PageRank as "reads src vtxProp: no" and "#vtxProp: 1"
with an 8-byte entry.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import SimulationError
from repro.graph.csr import CSRGraph
from repro.algorithms.common import AlgorithmResult, make_engine
from repro.ligra.atomics import AtomicOp, scatter_atomic
from repro.ligra.vertex_subset import VertexSubset

__all__ = ["run_pagerank", "pagerank_reference"]

DAMPING = 0.85


def run_pagerank(
    graph: CSRGraph,
    num_cores: int = 16,
    chunk_size: Optional[int] = None,
    trace: bool = True,
    max_iters: int = 1,
    tolerance: float = 0.0,
    framework: str = "ligra",
) -> AlgorithmResult:
    """Run PageRank for up to ``max_iters`` iterations.

    The paper simulates a single iteration (Section X, "Because of the
    long simulation times of gem5, we simulate only a single iteration
    of PageRank"); pass a larger ``max_iters`` with a ``tolerance`` to
    run to convergence.

    ``framework`` selects the execution flavour the paper's
    source-to-source tool supports (Section V-F):

    - ``"ligra"`` — forward scatter with atomic fp-adds (Fig 2).
    - ``"graphmat"`` — GraphMat-style backward gather: each core owns a
      destination partition and accumulates without atomics ("such
      frameworks partition the dataset so that only a single thread
      modifies vtxProp at a time" — Section IV).
    """
    if max_iters < 1:
        raise SimulationError(f"max_iters must be >= 1, got {max_iters}")
    if framework not in ("ligra", "graphmat"):
        raise SimulationError(
            f"framework must be 'ligra' or 'graphmat', got {framework!r}"
        )
    n = graph.num_vertices
    engine = make_engine(graph, num_cores, chunk_size, trace)

    next_pr = engine.alloc_prop("next_pagerank", np.float64)
    # curr_pagerank / contribution live in the regular caches (Fig 12).
    curr_pr = engine.alloc_prop("curr_pagerank", np.float64, vtxprop=False)
    contrib = engine.alloc_prop("contribution", np.float64, vtxprop=False)
    curr_pr.values[:] = 1.0 / max(n, 1)

    out_deg = graph.out_degrees()
    safe_deg = np.maximum(out_deg, 1)
    frontier = VertexSubset.full(n)
    iterations = 0
    for _ in range(max_iters):
        iterations += 1
        next_pr.values[:] = 0.0

        # Per-vertex contribution: curr / out_degree (sequential pass).
        def compute_contrib(ids: np.ndarray) -> None:
            contrib.values[ids] = curr_pr.values[ids] / safe_deg[ids]

        engine.vertex_map(
            frontier, compute_contrib, read_props=[curr_pr], write_props=[contrib]
        )

        # Scatter (Ligra) or gather (GraphMat) phase.
        def scatter(srcs, dsts, _weights) -> np.ndarray:
            if len(srcs) == 0:
                return srcs
            return scatter_atomic(
                AtomicOp.FP_ADD, next_pr.values, dsts, contrib.values[srcs]
            )

        engine.edge_map(
            frontier,
            scatter,
            src_props=[contrib],
            dst_props=[next_pr],
            # GraphMat's backward gather makes each destination's owner
            # the only writer, so the engine emits no atomic events.
            direction="out" if framework == "ligra" else "in",
            output="none",
        )

        # Damping + copy-back (the Fig 12 sequential vtxProp scan).
        def finish(ids: np.ndarray) -> None:
            next_pr.values[ids] = (
                (1.0 - DAMPING) / max(n, 1) + DAMPING * next_pr.values[ids]
            )
            curr_pr.values[ids] = next_pr.values[ids]

        engine.vertex_map(
            frontier, finish, read_props=[next_pr], write_props=[curr_pr]
        )
        engine.stats.iterations = iterations

        if tolerance > 0 and iterations > 1:
            if float(np.abs(next_pr.values - _prev).max()) < tolerance:
                break
        _prev = next_pr.values.copy()

    return AlgorithmResult(
        name="pagerank",
        engine=engine,
        values={"rank": next_pr.values.copy()},
        iterations=iterations,
    )


def pagerank_reference(
    graph: CSRGraph, iterations: int = 1, damping: float = DAMPING
) -> np.ndarray:
    """Plain-numpy PageRank used as a correctness oracle in tests."""
    n = graph.num_vertices
    if n == 0:
        return np.zeros(0)
    rank = np.full(n, 1.0 / n)
    out_deg = np.maximum(graph.out_degrees(), 1)
    src, dst = graph.edge_arrays()
    for _ in range(iterations):
        contrib = rank / out_deg
        nxt = np.zeros(n)
        np.add.at(nxt, dst, contrib[src])
        rank = (1.0 - damping) / n + damping * nxt
    return rank
