"""NPY001 — numpy accumulation folds must use 64-bit accumulators.

The trace pipeline folds billions of events into numpy arrays:
``np.add.at(hist, idx, vals)`` scatter-adds and ``hist +=
np.bincount(...)`` histogram merges. Numpy does *not* promote the
accumulator's dtype — an ``int32`` histogram silently wraps at 2³¹
events and the replay statistics come out plausible but wrong. (The
paper's natural-graph traces concentrate most events on a few hot
vertices, so the per-bin counts actually get there.)

This rule finds every accumulation site and chases the accumulator
back to its creation through the intraprocedural reaching-definitions
view (:mod:`repro.analyze.dataflow`) and, for ``self.X`` targets, the
class's recorded attribute initializers:

- explicit ``dtype=np.int64`` / ``np.uint64`` / ``np.float64`` (or
  the equivalent strings and Python ``float``) is safe;
- ``np.zeros/ones/empty/full`` *without* a dtype default to float64 —
  safe;
- ``np.bincount(...)`` itself returns int64 — safe as a source;
- ``np.zeros_like/np.asarray/np.array`` without a dtype inherit the
  argument's dtype, so the chase recurses into the argument;
- ``.astype(d)`` re-classifies to ``d``;
- a narrow dtype (``int32``, ``float32``, bare ``int``) is an error;
- an accumulator whose dtype cannot be determined statically is an
  error too — add an explicit ``dtype=np.int64``/``float64``, or keep
  the narrow width with a reasoned ``# repro: noqa[NPY001] -- why``
  (e.g. a bounded per-window count that provably fits).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from repro.analyze.astutil import resolve_call_target, import_aliases
from repro.analyze.dataflow import FunctionFlow, walk_function_body
from repro.analyze.findings import Finding
from repro.analyze.project import ProjectIndex
from repro.analyze.registry import rule

__all__ = ["check_accumulator_width"]

#: Dotted numpy dtypes that hold a full event count.
_WIDE_DTYPES = frozenset({
    "numpy.int64", "numpy.uint64", "numpy.float64", "numpy.intp",
    "numpy.double",
})

#: dtype string spellings that are 64-bit.
_WIDE_STRINGS = frozenset({
    "int64", "uint64", "float64", "i8", "u8", "f8", "<i8", "<u8", "<f8",
})

#: Creation calls that default to float64 when no dtype is given.
_FLOAT64_DEFAULT = frozenset({
    "numpy.zeros", "numpy.ones", "numpy.empty", "numpy.full",
})

#: Creation calls that inherit their first argument's dtype.
_INHERIT_ARG0 = frozenset({
    "numpy.zeros_like", "numpy.ones_like", "numpy.empty_like",
    "numpy.full_like", "numpy.asarray", "numpy.array", "numpy.copy",
    "numpy.ascontiguousarray",
})

#: How many creation-chain hops to follow before giving up.
_CHASE_DEPTH = 6


def _classify_dtype(expr: ast.expr, aliases: Dict[str, str]) -> str:
    """'wide' / 'narrow' / 'unknown' for a dtype expression."""
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        return "wide" if expr.value in _WIDE_STRINGS else "narrow"
    if isinstance(expr, ast.Name) and expr.id == "float":
        return "wide"  # Python float is a 64-bit double
    if isinstance(expr, ast.Name) and expr.id == "int":
        return "narrow"  # platform int — int32 on Windows
    dotted = resolve_call_target(expr, aliases)
    if dotted is None:
        return "unknown"
    if dotted in _WIDE_DTYPES:
        return "wide"
    if dotted.startswith("numpy."):
        return "narrow"
    return "unknown"


class _Chase:
    """Chase an accumulator expression back to a creation dtype."""

    def __init__(self, aliases: Dict[str, str],
                 flow: Optional[FunctionFlow],
                 attr_inits: Dict[str, List[ast.expr]]) -> None:
        self.aliases = aliases
        self.flow = flow
        self.attr_inits = attr_inits

    def classify(self, expr: ast.expr, depth: int = 0) -> str:
        if depth > _CHASE_DEPTH:
            return "unknown"
        while isinstance(expr, ast.Subscript):
            expr = expr.value  # hist[k] accumulates into hist
        if isinstance(expr, ast.Name):
            if self.flow is None:
                return "unknown"
            value = self.flow.reaching(expr.id, expr.lineno)
            if value is None:
                return "unknown"
            return self.classify(value, depth + 1)
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
        ):
            inits = self.attr_inits.get(expr.attr, [])
            if not inits:
                return "unknown"
            kinds = {self.classify(i, depth + 1) for i in inits}
            if kinds == {"wide"}:
                return "wide"
            return "narrow" if "narrow" in kinds else "unknown"
        if isinstance(expr, ast.Call):
            return self._classify_creation(expr, depth)
        return "unknown"

    def _classify_creation(self, call: ast.Call, depth: int) -> str:
        func = call.func
        # arr.astype(d) re-types to d
        if isinstance(func, ast.Attribute) and func.attr == "astype":
            if call.args:
                return _classify_dtype(call.args[0], self.aliases)
            for kw in call.keywords:
                if kw.arg == "dtype":
                    return _classify_dtype(kw.value, self.aliases)
            return "unknown"
        dotted = resolve_call_target(func, self.aliases)
        if dotted is None:
            return "unknown"
        if dotted == "numpy.bincount":
            return "wide"  # bincount counts in int64
        for kw in call.keywords:
            if kw.arg == "dtype":
                return _classify_dtype(kw.value, self.aliases)
        if dotted in _FLOAT64_DEFAULT:
            return "wide"  # numpy's default dtype is float64
        if dotted in _INHERIT_ARG0 and call.args:
            return self.classify(call.args[0], depth + 1)
        return "unknown"


def _fold_sites(
    scope: ast.AST,
    aliases: Dict[str, str],
) -> Iterator[Tuple[str, ast.expr, int]]:
    """(kind, accumulator expr, lineno) accumulation sites in a scope."""
    for node in walk_function_body(scope):
        if isinstance(node, ast.Call):
            dotted = resolve_call_target(node.func, aliases)
            if dotted == "numpy.add.at" and node.args:
                yield "np.add.at", node.args[0], node.lineno
        elif isinstance(node, ast.AugAssign):
            for sub in ast.walk(node.value):
                if isinstance(sub, ast.Call):
                    dotted = resolve_call_target(sub.func, aliases)
                    if dotted == "numpy.bincount":
                        yield "np.bincount fold", node.target, node.lineno
                        break


@rule(
    id="NPY001",
    name="accumulator-width",
    description=(
        "np.add.at / np.bincount accumulation targets must be"
        " explicit 64-bit arrays (int64/uint64/float64) or carry a"
        " reasoned width justification"
    ),
)
def check_accumulator_width(project: ProjectIndex) -> Iterator[Finding]:
    """Flag numpy accumulation folds into narrow or unknown dtypes."""
    info = check_accumulator_width.info  # type: ignore[attr-defined]
    graph = project.call_graph()

    for qual in sorted(graph.functions):
        ref = graph.functions[qual]
        aliases = import_aliases(project.modules[ref.module].tree)
        cls = graph.classes.get(ref.cls) if ref.cls else None
        chase = _Chase(
            aliases, ref.flow, cls.attr_inits if cls else {},
        )
        module = project.get(ref.module)
        if module is None:  # pragma: no cover - functions come from modules
            continue
        for kind, target, lineno in _fold_sites(ref.node, aliases):
            verdict = chase.classify(target)
            if verdict == "wide":
                continue
            if verdict == "narrow":
                problem = (
                    "accumulates into a narrow dtype; integer"
                    " overflow wraps silently at scale"
                )
            else:
                problem = (
                    "accumulates into an array whose dtype cannot be"
                    " determined statically"
                )
            yield info.finding(
                module.rel_path, lineno,
                f"{kind} {problem}: make the accumulator an explicit"
                " np.int64/np.uint64/np.float64 array, or justify the"
                " width with '# repro: noqa[NPY001] -- why'",
            )
