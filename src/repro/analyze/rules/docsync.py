"""DOC001 — flags, env vars, and format versions must match the docs.

The docs promise specific knobs and version numbers; nothing enforced
them. Three sub-checks, each importable on its own for targeted
tests:

- :func:`check_cli_flags` — every ``--flag`` registered in
  ``repro.cli`` appears in ``README.md`` or a ``docs/*.md`` page;
- :func:`check_env_vars` — every ``REPRO_*`` environment variable
  named by a string literal anywhere in the package appears in the
  docs;
- :func:`check_version_sync` — the trace format version constants
  (``TRACE_FORMAT_VERSION``, ``READABLE_TRACE_VERSIONS``), the
  manifest schema tag (``MANIFEST_SCHEMA``) and the timeline schema
  tag (``TIMELINE_SCHEMA``) agree with what
  ``docs/trace-format.md`` states inline.

When the checkout ships no docs at all (bare package install) the
rule is silent — there is nothing to keep in sync.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Set, Tuple

from repro.analyze.astutil import module_constant
from repro.analyze.findings import Finding, RuleInfo
from repro.analyze.project import ProjectIndex
from repro.analyze.registry import rule

__all__ = [
    "check_docs_sync",
    "check_cli_flags",
    "check_env_vars",
    "check_version_sync",
]

CLI_MODULE = "repro.cli"
TRACE_MODULE = "repro.ligra.trace"
REPORT_MODULE = "repro.core.report"
TIMELINE_MODULE = "repro.obs.timeline"
TRACE_DOC = "docs/trace-format.md"

_ENV_VAR = re.compile(r"^REPRO_[A-Z0-9_]+$")


def _doc_corpus(project: ProjectIndex) -> str:
    """Every doc page concatenated (for containment checks)."""
    return "\n".join(project.docs().values())


def check_cli_flags(project: ProjectIndex,
                    info: RuleInfo) -> Iterator[Finding]:
    """Every registered ``--flag`` must appear in the docs."""
    cli = project.get(CLI_MODULE)
    if cli is None or not project.docs():
        return
    corpus = _doc_corpus(project)
    seen: Set[str] = set()
    for node in ast.walk(cli.tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "add_argument"
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
            and node.args[0].value.startswith("--")
        ):
            continue
        flag = node.args[0].value
        if flag in seen:
            continue
        seen.add(flag)
        if flag not in corpus:
            yield info.finding(
                cli.rel_path, node.lineno,
                f"CLI flag {flag} is not documented in README.md or"
                " any docs/*.md page",
            )


def check_env_vars(project: ProjectIndex,
                   info: RuleInfo) -> Iterator[Finding]:
    """Every ``REPRO_*`` env var named in the code must be documented."""
    if not project.docs():
        return
    corpus = _doc_corpus(project)
    seen: Set[str] = set()
    for module in project.iter_modules("repro"):
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Constant)
                and isinstance(node.value, str)
                and _ENV_VAR.match(node.value)
            ):
                continue
            var = node.value
            if var in seen:
                continue
            seen.add(var)
            if var not in corpus:
                yield info.finding(
                    module.rel_path, node.lineno,
                    f"environment variable {var} is not documented in"
                    " README.md or any docs/*.md page",
                )


def _stated_versions(doc: str) -> Tuple[int, Set[int]]:
    """(current version, readable set) as stated by the trace doc.

    Returns ``(-1, set())`` components for statements the doc no
    longer makes — the caller reports those as findings.
    """
    current = -1
    match = re.search(r"TRACE_FORMAT_VERSION`, currently (\d+)", doc)
    if match:
        current = int(match.group(1))
    readable: Set[int] = set()
    match = re.search(r"currently \{([0-9, ]+)\}", doc)
    if match:
        readable = {int(v) for v in match.group(1).split(",")}
    return current, readable


def check_version_sync(project: ProjectIndex,
                       info: RuleInfo) -> Iterator[Finding]:
    """Format-version constants must match the docs' inline claims."""
    doc = project.doc_text(TRACE_DOC)
    if doc is None:
        return
    stated_current, stated_readable = _stated_versions(doc)

    trace = project.get(TRACE_MODULE)
    if trace is not None:
        value, lineno = module_constant(
            trace.tree, "TRACE_FORMAT_VERSION"
        )
        if isinstance(value, int):
            if stated_current == -1:
                yield info.finding(
                    trace.rel_path, lineno,
                    f"{TRACE_DOC} no longer states the current trace"
                    " format version ('TRACE_FORMAT_VERSION`,"
                    " currently N')",
                )
            elif stated_current != value:
                yield info.finding(
                    trace.rel_path, lineno,
                    f"TRACE_FORMAT_VERSION is {value} but"
                    f" {TRACE_DOC} states {stated_current}",
                )
        readable, lineno = module_constant(
            trace.tree, "READABLE_TRACE_VERSIONS"
        )
        if isinstance(readable, (set, frozenset, tuple, list)):
            actual = {int(v) for v in readable}
            if not stated_readable:
                yield info.finding(
                    trace.rel_path, lineno,
                    f"{TRACE_DOC} no longer lists the readable trace"
                    " versions ('currently {…}')",
                )
            elif stated_readable != actual:
                yield info.finding(
                    trace.rel_path, lineno,
                    "READABLE_TRACE_VERSIONS is"
                    f" {sorted(actual)} but {TRACE_DOC} states"
                    f" {sorted(stated_readable)}",
                )

    for module_name, constant in (
        (REPORT_MODULE, "MANIFEST_SCHEMA"),
        (TIMELINE_MODULE, "TIMELINE_SCHEMA"),
    ):
        module = project.get(module_name)
        if module is None:
            continue
        value, lineno = module_constant(module.tree, constant)
        if isinstance(value, str) and value not in doc:
            yield info.finding(
                module.rel_path, lineno,
                f"{constant} is {value!r} but {TRACE_DOC} never"
                " mentions that tag; update the schema section",
            )


@rule(
    id="DOC001",
    name="docs-sync",
    description=(
        "CLI flags, REPRO_* env vars, and format-version constants"
        " match what the docs state"
    ),
)
def check_docs_sync(project: ProjectIndex) -> Iterator[Finding]:
    """Run the three documentation cross-checks."""
    info = check_docs_sync.info  # type: ignore[attr-defined]
    yield from check_cli_flags(project, info)
    yield from check_env_vars(project, info)
    yield from check_version_sync(project, info)
