"""DET001 — the simulator must be a pure function of its inputs.

Every headline claim (speedup ratios, 0-tolerance kernel parity,
bit-identical warm-cache counters) assumes that replaying the same
trace yields the same numbers. Inside the simulation packages
(``repro.memsim``, ``repro.core``, ``repro.ligra``) this rule bans
the classic entropy leaks:

- wall-clock reads that could feed results (``time.time``,
  ``datetime.now`` and friends) — ``time.perf_counter`` stays legal
  because the telemetry layer timestamps *host* duration, never
  simulated state;
- any random number generation, seeded or not (randomness belongs in
  the workload generators under ``repro.graph``/``repro.algorithms``);
- direct iteration over ``set`` values, whose order depends on
  ``PYTHONHASHSEED`` for strings (wrap in ``sorted(...)``).

Package-wide (all of ``repro``), the legacy global-state numpy RNG
(``np.random.rand`` etc.) and unseeded ``default_rng()`` are banned:
even workload generators must thread an explicit seed.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analyze.astutil import import_aliases, resolve_call_target
from repro.analyze.findings import Finding
from repro.analyze.project import ProjectIndex, SourceModule
from repro.analyze.registry import rule

__all__ = ["check_determinism"]

#: Packages where the no-entropy rules apply in full.
SIM_PACKAGES = ("repro.memsim", "repro.core", "repro.ligra")

#: Clock calls that leak wall-time into simulation scope.
_FORBIDDEN_CLOCKS = {
    "time.time",
    "time.time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

#: Call-path prefixes that mean "random numbers".
_RNG_PREFIXES = ("random.", "numpy.random.")


def _in_sim_scope(module: SourceModule) -> bool:
    return any(
        module.name == p or module.name.startswith(p + ".")
        for p in SIM_PACKAGES
    )


def _is_set_expr(node: ast.expr) -> bool:
    """Whether ``node`` evaluates to a set with unstable order."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


@rule(
    id="DET001",
    name="determinism",
    description=(
        "no wall-clock or RNG calls and no set-order iteration inside"
        " the simulation packages; no global-state or unseeded numpy"
        " RNG anywhere"
    ),
)
def check_determinism(project: ProjectIndex) -> Iterator[Finding]:
    """Flag entropy sources that would break replay determinism."""
    info = check_determinism.info  # type: ignore[attr-defined]
    for module in project.iter_modules("repro"):
        aliases = import_aliases(module.tree)
        sim_scope = _in_sim_scope(module)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                target = resolve_call_target(node.func, aliases)
                if target is None:
                    continue
                if sim_scope and target in _FORBIDDEN_CLOCKS:
                    yield info.finding(
                        module.rel_path, node.lineno,
                        f"wall-clock call {target}() inside the"
                        " simulation packages; simulated results must"
                        " not depend on host time"
                        " (time.perf_counter is allowed for host-side"
                        " telemetry)",
                    )
                elif target == "numpy.random.default_rng":
                    if not node.args and not node.keywords:
                        yield info.finding(
                            module.rel_path, node.lineno,
                            "unseeded numpy.random.default_rng();"
                            " thread an explicit seed so runs are"
                            " reproducible",
                        )
                    elif sim_scope:
                        yield info.finding(
                            module.rel_path, node.lineno,
                            "RNG construction inside the simulation"
                            " packages; randomness belongs in the"
                            " workload generators"
                            " (repro.graph / repro.algorithms)",
                        )
                elif target.startswith(_RNG_PREFIXES):
                    if sim_scope:
                        yield info.finding(
                            module.rel_path, node.lineno,
                            f"RNG call {target}() inside the"
                            " simulation packages; replay must be"
                            " deterministic",
                        )
                    else:
                        yield info.finding(
                            module.rel_path, node.lineno,
                            f"global-state RNG call {target}(); use"
                            " numpy.random.default_rng(seed) so the"
                            " stream is isolated and seeded",
                        )
            elif sim_scope and isinstance(
                node, (ast.For, ast.AsyncFor)
            ) and _is_set_expr(node.iter):
                yield info.finding(
                    module.rel_path, node.lineno,
                    "iteration over a set inside the simulation"
                    " packages; set order depends on PYTHONHASHSEED —"
                    " wrap in sorted(...)",
                )
            elif sim_scope and isinstance(node, ast.comprehension) \
                    and _is_set_expr(node.iter):
                yield info.finding(
                    module.rel_path, node.iter.lineno,
                    "comprehension over a set inside the simulation"
                    " packages; set order depends on PYTHONHASHSEED —"
                    " wrap in sorted(...)",
                )
