"""EXC001 — library code raises ReproError subclasses only.

``docs/api.md`` promises callers one catchable base: every error the
library raises derives from :class:`repro.errors.ReproError`. A stray
``raise ValueError`` deep in the simulator breaks that contract
silently — callers who wrote ``except ReproError`` miss it and crash.
This rule enforces the contract statically over every module under
``src/repro`` except the process-boundary modules (``repro.cli``,
``repro.__main__``), where translating to exit codes is the job:

- ``raise <BuiltinError>(...)`` is flagged unless the name is a
  ReproError subclass. The subclass set is computed by a transitive
  fixpoint over every ``class X(Y):`` in the project, so adding
  ``class ObsError(ReproError, ValueError)`` to ``repro.errors``
  immediately legalizes ``raise ObsError(...)`` everywhere.
  ``NotImplementedError`` is exempt — the abstract-hook idiom
  (``raise NotImplementedError`` in a method subclasses must
  override) is a programming contract, not a runtime error path.
  Bare ``raise`` (re-raise) and raising a bound variable are allowed.
- ``except Exception:`` and bare ``except:`` are flagged: a blanket
  catch in library code swallows programming errors. Where a blanket
  catch is genuinely required (isolating a worker thread, tolerating
  a corrupt cache file), carry a reasoned
  ``# repro: noqa[EXC001] -- why`` on the line.

``except BaseException:`` is deliberately *not* flagged — the two
in-tree uses re-raise after cleanup, which is exactly what
BaseException catches are for.
"""

from __future__ import annotations

import ast
import builtins
from typing import Iterator, Set

from repro.analyze.findings import Finding
from repro.analyze.project import ProjectIndex
from repro.analyze.registry import rule

__all__ = ["check_exception_contract"]

#: Process-boundary modules where raising/catching anything is the job.
EXEMPT_MODULES = frozenset({"repro.cli", "repro.__main__"})

#: Root of the library's exception hierarchy.
ROOT_EXCEPTION = "ReproError"

#: Builtin raises that are contracts, not error paths.
_CONTRACT_RAISES = frozenset({"NotImplementedError"})


def _builtin_exceptions() -> Set[str]:
    """Names of all builtin exception types (derived, not hardcoded)."""
    names: Set[str] = set()
    for name in dir(builtins):
        obj = getattr(builtins, name)
        if isinstance(obj, type) and issubclass(obj, BaseException):
            names.add(name)
    return names


def _base_name(base: ast.expr) -> "str | None":
    """Final name of a base-class expression (``errors.ReproError``)."""
    if isinstance(base, ast.Name):
        return base.id
    if isinstance(base, ast.Attribute):
        return base.attr
    return None


def repro_exception_names(project: ProjectIndex) -> Set[str]:
    """Transitive ReproError subclasses, project-wide, by fixpoint."""
    edges = []  # (class name, base names)
    for module in project.iter_modules():
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                bases = {
                    name for name in map(_base_name, node.bases)
                    if name is not None
                }
                if bases:
                    edges.append((node.name, bases))
    known: Set[str] = {ROOT_EXCEPTION}
    changed = True
    while changed:
        changed = False
        for name, bases in edges:
            if name not in known and bases & known:
                known.add(name)
                changed = True
    return known


def _raised_name(node: ast.Raise) -> "str | None":
    """Name being raised: ``raise X(...)`` or ``raise X`` → ``X``."""
    exc = node.exc
    if isinstance(exc, ast.Call):
        exc = exc.func
    if isinstance(exc, ast.Name):
        return exc.id
    return None


def _catches_everything(handler: ast.ExceptHandler) -> bool:
    """``except:`` or ``except Exception:`` (aliased or not)."""
    if handler.type is None:
        return True
    htype = handler.type
    if isinstance(htype, ast.Name):
        return htype.id == "Exception"
    if isinstance(htype, ast.Attribute):
        return htype.attr == "Exception"
    return False


@rule(
    id="EXC001",
    name="exception-contract",
    description=(
        "library code under src/repro raises only ReproError"
        " subclasses, and blanket 'except Exception:'/'except:'"
        " handlers carry a reasoned repro: noqa[EXC001]"
    ),
)
def check_exception_contract(project: ProjectIndex) -> Iterator[Finding]:
    """Enforce the one-catchable-base exception contract."""
    info = check_exception_contract.info  # type: ignore[attr-defined]
    builtin_errors = _builtin_exceptions()
    allowed = repro_exception_names(project) | _CONTRACT_RAISES

    for module in project.iter_modules():
        if module.name in EXEMPT_MODULES:
            continue
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Raise):
                name = _raised_name(node)
                if (
                    name is not None
                    and name in builtin_errors
                    and name not in allowed
                ):
                    yield info.finding(
                        module.rel_path, node.lineno,
                        f"library code raises builtin {name}; raise a"
                        f" ReproError subclass instead so callers can"
                        f" catch one base class (docs/api.md contract)",
                    )
            elif isinstance(node, ast.ExceptHandler):
                if _catches_everything(node):
                    what = (
                        "bare 'except:'" if node.type is None
                        else "'except Exception:'"
                    )
                    yield info.finding(
                        module.rel_path, node.lineno,
                        f"{what} in library code swallows programming"
                        " errors; catch a specific exception, or keep"
                        " the blanket catch with a reasoned"
                        " '# repro: noqa[EXC001] -- why'",
                    )
