"""CNT001 — counters must be conserved end-to-end.

``MemStats`` is the simulator's ledger: the replay engine and the
backends increment its fields, and reports/manifests/timelines read
them back out. A counter that is incremented but never reported is
dead weight *and* a silent hole in the manifest-diff regression gate;
one that is reported but never written is a constant-zero lie in
every manifest. This rule cross-checks, statically:

- the scalar ``int`` fields of ``MemStats`` (``repro.memsim.stats``),
- the increment sites across the simulation + telemetry packages,
- the reporting surface: ``MemStats.as_dict`` (transitively through
  the derived-metric properties), the timeline exporter's
  ``_STAT_FIELDS`` snapshot tuple (``repro.obs.timeline``), and the
  per-class attribution fold tuple ``ATTRIBUTED_FIELDS``
  (``repro.obs.attribution``), whose every name must conserve against
  a real ``MemStats`` counter.

Every written counter must be reachable from the reporting surface
and every reported name must exist and be written somewhere.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analyze.findings import Finding
from repro.analyze.project import ProjectIndex
from repro.analyze.registry import rule

__all__ = ["check_counter_conservation"]

#: Module holding the MemStats ledger.
STATS_MODULE = "repro.memsim.stats"

#: Module holding the windowed-timeline snapshot tuple.
TIMELINE_MODULE = "repro.obs.timeline"

#: Module holding the per-class attribution fold tuple.
ATTRIBUTION_MODULE = "repro.obs.attribution"

#: Packages scanned for counter increments.
WRITER_PACKAGES = ("repro.memsim", "repro.core", "repro.ligra", "repro.obs")


def _self_attrs(node: ast.AST) -> Set[str]:
    """Names accessed as ``self.X`` anywhere under ``node``."""
    found: Set[str] = set()
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Attribute)
            and isinstance(sub.value, ast.Name)
            and sub.value.id == "self"
        ):
            found.add(sub.attr)
    return found


def _memstats_surface(
    tree: ast.Module,
) -> Optional[Tuple[Dict[str, int], Dict[str, Set[str]], Set[str], int]]:
    """Parse the MemStats class body.

    Returns ``(scalar counter fields → def line, property name → self
    attrs it reads, self attrs referenced by as_dict, as_dict line)``,
    or ``None`` when the class is missing.
    """
    cls = next(
        (
            n for n in tree.body
            if isinstance(n, ast.ClassDef) and n.name == "MemStats"
        ),
        None,
    )
    if cls is None:
        return None
    counters: Dict[str, int] = {}
    properties: Dict[str, Set[str]] = {}
    as_dict_reads: Set[str] = set()
    as_dict_line = 0
    for node in cls.body:
        if (
            isinstance(node, ast.AnnAssign)
            and isinstance(node.target, ast.Name)
            and isinstance(node.annotation, ast.Name)
            and node.annotation.id == "int"
            and node.target.id != "num_cores"
        ):
            counters[node.target.id] = node.lineno
        elif isinstance(node, ast.FunctionDef):
            is_property = any(
                isinstance(d, ast.Name) and d.id == "property"
                for d in node.decorator_list
            )
            if is_property:
                properties[node.name] = _self_attrs(node)
            elif node.name == "as_dict":
                as_dict_reads = _self_attrs(node)
                as_dict_line = node.lineno
    return counters, properties, as_dict_reads, as_dict_line


def _reported_closure(as_dict_reads: Set[str],
                      properties: Dict[str, Set[str]]) -> Set[str]:
    """Fields reachable from as_dict, expanding derived properties."""
    reported: Set[str] = set()
    frontier = list(as_dict_reads)
    seen: Set[str] = set()
    while frontier:
        name = frontier.pop()
        if name in seen:
            continue
        seen.add(name)
        if name in properties:
            frontier.extend(properties[name])
        else:
            reported.add(name)
    return reported


def _written_fields(project: ProjectIndex,
                    counters: Set[str]) -> Dict[str, List[str]]:
    """Counter → modules that increment/assign it (outside stats.py)."""
    written: Dict[str, List[str]] = {}
    for module in project.iter_modules(*WRITER_PACKAGES):
        if module.name == STATS_MODULE:
            continue
        hits: Set[str] = set()
        for node in ast.walk(module.tree):
            target: Optional[ast.expr] = None
            if isinstance(node, ast.AugAssign):
                target = node.target
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
            if (
                isinstance(target, ast.Attribute)
                and target.attr in counters
            ):
                hits.add(target.attr)
        for name in hits:
            written.setdefault(name, []).append(module.name)
    return written


@rule(
    id="CNT001",
    name="counter-conservation",
    description=(
        "every MemStats counter that is written must be reported"
        " (as_dict or the timeline snapshot) and every reported"
        " counter must be written"
    ),
)
def check_counter_conservation(
    project: ProjectIndex,
) -> Iterator[Finding]:
    """Cross-check counter writes against the reporting surface."""
    info = check_counter_conservation.info  # type: ignore[attr-defined]
    stats_mod = project.get(STATS_MODULE)
    if stats_mod is None:
        return
    surface = _memstats_surface(stats_mod.tree)
    if surface is None:
        yield info.finding(
            stats_mod.rel_path, 1,
            "repro.memsim.stats no longer defines MemStats; the"
            " counter-conservation check has nothing to anchor to",
        )
        return
    counters, properties, as_dict_reads, as_dict_line = surface
    reported = _reported_closure(as_dict_reads, properties)

    snapshot_fields: Set[str] = set()
    snapshot_line = 0
    timeline_mod = project.get(TIMELINE_MODULE)
    if timeline_mod is not None:
        from repro.analyze.astutil import module_constant

        value, snapshot_line = module_constant(
            timeline_mod.tree, "_STAT_FIELDS"
        )
        if isinstance(value, (tuple, list)):
            snapshot_fields = {v for v in value if isinstance(v, str)}
        for name in sorted(snapshot_fields - set(counters)):
            yield info.finding(
                timeline_mod.rel_path, snapshot_line,
                f"timeline snapshot field {name!r} is not a MemStats"
                " counter; the windowed exporter would raise at"
                " runtime",
            )

    # The attribution fold tuple is a reporting surface too: every
    # per-class column must conserve against a real MemStats counter
    # (AttributionAccumulator.verify reads it with getattr at runtime).
    attributed_fields: Set[str] = set()
    attribution_mod = project.get(ATTRIBUTION_MODULE)
    if attribution_mod is not None:
        from repro.analyze.astutil import module_constant

        value, attributed_line = module_constant(
            attribution_mod.tree, "ATTRIBUTED_FIELDS"
        )
        if isinstance(value, (tuple, list)):
            attributed_fields = {v for v in value if isinstance(v, str)}
        for name in sorted(attributed_fields - set(counters)):
            yield info.finding(
                attribution_mod.rel_path, attributed_line,
                f"attribution field {name!r} is not a MemStats counter;"
                " the conservation check would raise at runtime",
            )

    written = _written_fields(project, set(counters))

    for name, lineno in sorted(counters.items()):
        is_written = name in written
        is_reported = (
            name in reported or name in snapshot_fields
            or name in attributed_fields
        )
        if is_written and not is_reported:
            yield info.finding(
                stats_mod.rel_path, lineno,
                f"counter {name!r} is written"
                f" (in {', '.join(sorted(written[name]))}) but never"
                " reported: add it to MemStats.as_dict (directly or"
                " via a derived property) or to the timeline"
                " _STAT_FIELDS snapshot",
            )
        elif is_reported and not is_written:
            yield info.finding(
                stats_mod.rel_path, lineno,
                f"counter {name!r} is reported but never written"
                " anywhere in the simulation or telemetry packages —"
                " every manifest would carry a constant zero",
            )

    # as_dict referencing a nonexistent field/property is a typo that
    # would raise at report time; catch it before a run does.
    known = set(counters) | set(properties)
    for name in sorted(as_dict_reads - known):
        if name == "num_cores" or name.startswith("core_") \
                or name == "pisc_occupancy":
            continue  # per-core list fields are outside this rule
        yield info.finding(
            stats_mod.rel_path, as_dict_line,
            f"MemStats.as_dict references {name!r}, which is neither"
            " a counter field nor a derived property",
        )
