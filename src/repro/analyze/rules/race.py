"""RAC001 — lock discipline for state shared across thread roots.

PR 9 made the library genuinely multi-threaded: ``repro serve`` runs
jobs on a worker pool and answers requests on per-connection threads.
A data race there doesn't crash — it silently corrupts the warm-cache
bookkeeping or the counters the smoke tests gate on. This rule makes
the locking discipline machine-checked, using the whole-program call
graph (:meth:`ProjectIndex.call_graph`):

For every class in ``repro.serve`` / ``repro.obs``, every ``self.X``
instance attribute is attributed to the *thread roots* that can reach
a method touching it — the ambient main thread, each
``threading.Thread(target=...)`` spawn, each ``ThreadPoolExecutor``
submit site (many threads), and each ``do_*`` request-handler method
(many threads). When an attribute is reachable from more than one
thread (two distinct roots, or one many-thread root), every write to
it outside ``__init__`` must satisfy one of:

- execute inside a ``with self.<lock>:`` region (a ``threading.Lock``
  / ``RLock`` / ``Condition`` attribute, or any attribute whose name
  contains ``lock``);
- the attribute is intrinsically thread-safe: initialized as
  ``threading.local()``, ``Event``, ``Queue``, a lock itself, or an
  executor;
- the attribute is named in a class-level
  ``_RAC_SINGLE_WRITER = ("attr", ...)`` declaration — the reviewed
  statement that exactly one thread ever writes it;
- an explicit ``# repro: noqa[RAC001] -- reason`` suppression.

``__init__`` writes are exempt: the object is not published to other
threads until its constructor returns.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set, Tuple

from repro.analyze.astutil import resolve_call_target, import_aliases
from repro.analyze.callgraph import CallGraph, ClassRef
from repro.analyze.dataflow import LockContext, walk_function_body
from repro.analyze.findings import Finding
from repro.analyze.project import ProjectIndex
from repro.analyze.registry import rule

__all__ = ["check_lock_discipline"]

#: Packages whose classes are held to the lock discipline.
SHARED_STATE_PACKAGES = ("repro.serve", "repro.obs")

#: Constructor types that make an attribute intrinsically thread-safe.
_THREADSAFE_TYPES = frozenset({
    "threading.local",
    "threading.Lock",
    "threading.RLock",
    "threading.Condition",
    "threading.Semaphore",
    "threading.BoundedSemaphore",
    "threading.Event",
    "threading.Barrier",
    "queue.Queue",
    "queue.SimpleQueue",
    "queue.LifoQueue",
    "queue.PriorityQueue",
    "collections.deque",
    "concurrent.futures.ThreadPoolExecutor",
})

#: Lock constructor types (for recognizing ``with self.<attr>:``).
_LOCK_TYPES = frozenset({
    "threading.Lock",
    "threading.RLock",
    "threading.Condition",
    "threading.Semaphore",
    "threading.BoundedSemaphore",
})

#: Method names that mutate their receiver in place.
_MUTATORS = frozenset({
    "append", "appendleft", "extend", "extendleft", "insert", "add",
    "discard", "remove", "clear", "pop", "popleft", "popitem",
    "setdefault", "update", "move_to_end", "sort", "reverse", "write",
})

#: Class-level declaration naming reviewed single-writer attributes.
SINGLE_WRITER_DECL = "_RAC_SINGLE_WRITER"


class _Access:
    """One ``self.X`` touch inside one method."""

    def __init__(self, attr: str, method_qual: str, method_name: str,
                 lineno: int, is_write: bool, under_lock: bool) -> None:
        self.attr = attr
        self.method_qual = method_qual
        self.method_name = method_name
        self.lineno = lineno
        self.is_write = is_write
        self.under_lock = under_lock


def _self_attr(node: ast.expr) -> "str | None":
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _base_self_attr(node: ast.expr) -> "str | None":
    """``self.X`` at the base of a subscript chain (``self.X[k]``)."""
    while isinstance(node, ast.Subscript):
        node = node.value
    return _self_attr(node)


def _attr_type(graph: CallGraph, cls: ClassRef, attr: str,
               aliases: Dict[str, str]) -> "str | None":
    """Dotted constructor type of ``self.attr``'s initializer."""
    for init in cls.attr_inits.get(attr, []):
        if isinstance(init, ast.Call):
            dotted = resolve_call_target(init.func, aliases)
            if dotted is not None:
                return dotted
    return None


def _is_lock_attr(graph: CallGraph, cls: ClassRef, attr: str,
                  aliases: Dict[str, str]) -> bool:
    if "lock" in attr.lower():
        return True
    return _attr_type(graph, cls, attr, aliases) in _LOCK_TYPES


def _single_writer_decl(cls: ClassRef) -> Set[str]:
    """Attributes declared single-writer at class level."""
    for node in cls.node.body:
        if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
            continue
        target = node.targets[0]
        if not (isinstance(target, ast.Name)
                and target.id == SINGLE_WRITER_DECL):
            continue
        try:
            value = ast.literal_eval(node.value)
        except (ValueError, SyntaxError):
            return set()
        if isinstance(value, (tuple, list, set, frozenset)):
            return {v for v in value if isinstance(v, str)}
    return set()


def _collect_accesses(graph: CallGraph, cls: ClassRef,
                      aliases: Dict[str, str]) -> List[_Access]:
    accesses: List[_Access] = []

    def lockish(expr: ast.expr) -> bool:
        attr = _self_attr(expr)
        return attr is not None and _is_lock_attr(graph, cls, attr,
                                                  aliases)

    for method_name, method in sorted(cls.methods.items()):
        locks = LockContext(method.node, lockish)
        writes: Dict[int, Set[str]] = {}

        def record_write(attr: "str | None", lineno: int) -> None:
            if attr is not None:
                writes.setdefault(lineno, set()).add(attr)

        for node in walk_function_body(method.node):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    record_write(_base_self_attr(target), node.lineno)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                record_write(_base_self_attr(node.target), node.lineno)
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    record_write(_base_self_attr(target), node.lineno)
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _MUTATORS
                ):
                    record_write(_base_self_attr(func.value), node.lineno)
        seen_reads: Set[Tuple[str, int]] = set()
        for node in walk_function_body(method.node):
            attr = _self_attr(node)
            if attr is None:
                continue
            lineno = node.lineno
            if attr in writes.get(lineno, ()):  # recorded as a write
                accesses.append(_Access(
                    attr, method.qual, method_name, lineno,
                    is_write=True, under_lock=locks.covers(lineno),
                ))
                writes[lineno].discard(attr)
            elif (attr, lineno) not in seen_reads:
                seen_reads.add((attr, lineno))
                accesses.append(_Access(
                    attr, method.qual, method_name, lineno,
                    is_write=False, under_lock=locks.covers(lineno),
                ))
    return accesses


@rule(
    id="RAC001",
    name="lock-discipline",
    description=(
        "instance attributes of repro.serve/repro.obs classes written"
        " from more than one thread root must be written under a held"
        " lock, be intrinsically thread-safe, or be declared"
        " single-writer"
    ),
)
def check_lock_discipline(project: ProjectIndex) -> Iterator[Finding]:
    """Flag unguarded writes to state shared across thread roots."""
    info = check_lock_discipline.info  # type: ignore[attr-defined]
    graph = project.call_graph()
    roots = graph.thread_roots()
    if len(roots) <= 1:
        return  # no spawn/handler sites → nothing is concurrent
    reach = {root.label: graph.reachable(root.entries) for root in roots}

    for cls in graph.classes_in(SHARED_STATE_PACKAGES):
        module = project.get(cls.module)
        if module is None:  # pragma: no cover - classes come from modules
            continue
        aliases = import_aliases(module.tree)
        accesses = _collect_accesses(graph, cls, aliases)
        if not accesses:
            continue
        declared = _single_writer_decl(cls)
        by_attr: Dict[str, List[_Access]] = {}
        for access in accesses:
            by_attr.setdefault(access.attr, []).append(access)
        for attr in sorted(by_attr):
            if attr not in cls.attr_inits:
                # Never assigned by this class — base-class state
                # (e.g. BaseHTTPRequestHandler's per-connection
                # wfile), managed outside this class's discipline.
                continue
            touches = by_attr[attr]
            hit_roots = [
                root for root in roots
                if any(t.method_qual in reach[root.label] for t in touches)
            ]
            many = any(root.many for root in hit_roots)
            if len(hit_roots) < 2 and not many:
                continue
            if _is_lock_attr(graph, cls, attr, aliases):
                continue
            if _attr_type(graph, cls, attr, aliases) in _THREADSAFE_TYPES:
                continue
            if attr in declared:
                continue
            labels = ", ".join(root.label for root in hit_roots)
            for touch in touches:
                if not touch.is_write or touch.method_name == "__init__":
                    continue
                if touch.under_lock:
                    continue
                yield info.finding(
                    module.rel_path, touch.lineno,
                    f"attribute '{cls.name}.{attr}' is shared across"
                    f" thread roots ({labels}) but this write in"
                    f" {touch.method_name}() is not under a 'with"
                    f" self.<lock>:' region; guard it, use a"
                    f" thread-safe container (threading.local/Event/"
                    f"Queue), or declare it in {SINGLE_WRITER_DECL}",
                )
