"""Built-in rule modules.

Importing this package registers every built-in rule with the
registry (each module applies the :func:`repro.analyze.registry.rule`
decorator at import time). ``registry._load_builtin_rules`` imports
this package lazily so the registry module itself stays import-cycle
free.
"""

from repro.analyze.rules import counters as counters
from repro.analyze.rules import determinism as determinism
from repro.analyze.rules import docsync as docsync
from repro.analyze.rules import envreads as envreads
from repro.analyze.rules import exceptions as exceptions
from repro.analyze.rules import manifest_schema as manifest_schema
from repro.analyze.rules import numpyfold as numpyfold
from repro.analyze.rules import protocol as protocol
from repro.analyze.rules import race as race
from repro.analyze.rules import routing as routing

__all__ = [
    "counters", "determinism", "docsync", "envreads", "exceptions",
    "manifest_schema", "numpyfold", "protocol", "race", "routing",
]
