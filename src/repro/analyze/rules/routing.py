"""RTE001 — every route code must be emitted and accounted.

The replay engine partitions a trace by ``ROUTE_*`` code: the cache
path executes ``ROUTE_CACHE``, everything else must be batch-charged
by whichever backend emitted it. A route that a backend assigns but
never accounts silently drops events from the counters — exactly the
kind of conservation bug the paper's ratios cannot survive. This rule
checks, statically, for every ``ROUTE_*`` constant defined in
``repro.memsim.routes``:

- engine-owned codes (referenced by ``repro.memsim.replay`` or by
  ``routes.py`` itself, e.g. the masking sentinel) are exempt;
- every other code must be *emitted* by at least one backend
  (``routes[mask] = ROUTE_X``) or declared in a module-level
  ``ROUTES_DECLARED_UNUSED`` tuple in ``routes.py``;
- each backend that emits a code must *account* it: compare it in its
  own ``account`` (``routes == ROUTE_X``), inherit the shared
  handling in ``backends/base.py``, or declare it in a module-level
  ``ROUTES_ACCOUNTED_AT_ROUTE_TIME`` tuple (for stateful stages like
  the source-buffer walk that charge their events while routing).
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, Set

from repro.analyze.astutil import string_tuple_constant
from repro.analyze.findings import Finding
from repro.analyze.project import ProjectIndex, SourceModule
from repro.analyze.registry import rule

__all__ = ["check_route_exhaustiveness"]

ROUTES_MODULE = "repro.memsim.routes"
REPLAY_MODULE = "repro.memsim.replay"
BACKENDS_PACKAGE = "repro.memsim.backends"
BASE_MODULE = "repro.memsim.backends.base"

_ROUTE_NAME = re.compile(r"^ROUTE_[A-Z0-9_]+$")


def _route_definitions(module: SourceModule) -> Dict[str, int]:
    """Top-level ``ROUTE_*`` constants → definition line."""
    routes: Dict[str, int] = {}
    for node in module.tree.body:
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign):
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Name) and _ROUTE_NAME.match(target.id):
                routes[target.id] = node.lineno
    return routes


def _referenced_routes(module: SourceModule) -> Set[str]:
    """Every ``ROUTE_*`` name loaded (not assigned) in the module."""
    return {
        node.id
        for node in ast.walk(module.tree)
        if isinstance(node, ast.Name)
        and isinstance(node.ctx, ast.Load)
        and _ROUTE_NAME.match(node.id)
    }


def _emitted_routes(module: SourceModule) -> Dict[str, int]:
    """Routes assigned into a subscript (``routes[mask] = ROUTE_X``)."""
    emitted: Dict[str, int] = {}
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Assign):
            continue
        if not any(isinstance(t, ast.Subscript) for t in node.targets):
            continue
        value = node.value
        if isinstance(value, ast.Name) and _ROUTE_NAME.match(value.id):
            emitted.setdefault(value.id, node.lineno)
    return emitted


def _compared_routes(module: SourceModule) -> Set[str]:
    """Routes appearing in a comparison (``routes == ROUTE_X``)."""
    compared: Set[str] = set()
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Compare):
            continue
        for expr in [node.left] + list(node.comparators):
            if isinstance(expr, ast.Name) and _ROUTE_NAME.match(expr.id):
                compared.add(expr.id)
    return compared


@rule(
    id="RTE001",
    name="route-exhaustiveness",
    description=(
        "every ROUTE_* code is engine-owned, or emitted by a backend"
        " that also accounts it, or explicitly declared unused"
    ),
)
def check_route_exhaustiveness(
    project: ProjectIndex,
) -> Iterator[Finding]:
    """Cross-check route definitions, emissions, and accounting."""
    info = check_route_exhaustiveness.info  # type: ignore[attr-defined]
    routes_mod = project.get(ROUTES_MODULE)
    if routes_mod is None:
        return
    defined = _route_definitions(routes_mod)
    declared_unused = string_tuple_constant(
        routes_mod.tree, "ROUTES_DECLARED_UNUSED"
    )

    engine_owned = _referenced_routes(routes_mod)
    replay_mod = project.get(REPLAY_MODULE)
    if replay_mod is not None:
        engine_owned |= _referenced_routes(replay_mod)

    base_mod = project.get(BASE_MODULE)
    base_accounted = (
        _compared_routes(base_mod) if base_mod is not None else set()
    )

    emitted_anywhere: Set[str] = set()
    for module in project.iter_modules(BACKENDS_PACKAGE):
        if module.name in (BACKENDS_PACKAGE, BASE_MODULE):
            continue
        emitted = _emitted_routes(module)
        emitted_anywhere |= set(emitted)
        compared = _compared_routes(module)
        inline = string_tuple_constant(
            module.tree, "ROUTES_ACCOUNTED_AT_ROUTE_TIME"
        )
        for name in sorted(set(inline) - set(defined)):
            yield info.finding(
                module.rel_path, 1,
                f"ROUTES_ACCOUNTED_AT_ROUTE_TIME names {name!r},"
                " which repro.memsim.routes does not define",
            )
        handled = compared | base_accounted | inline
        for name, lineno in sorted(emitted.items()):
            if name in engine_owned or name in handled:
                continue
            yield info.finding(
                module.rel_path, lineno,
                f"backend emits {name} but never accounts it: add a"
                f" 'routes == {name}' branch to account(), rely on"
                " the shared base accounting, or declare it in"
                " ROUTES_ACCOUNTED_AT_ROUTE_TIME with the stage that"
                " charges it",
            )

    for name, lineno in sorted(defined.items()):
        if name in engine_owned or name in emitted_anywhere:
            continue
        if name in declared_unused:
            continue
        yield info.finding(
            routes_mod.rel_path, lineno,
            f"route code {name} is defined but no backend emits it"
            " and the engine does not own it; remove it or add it to"
            " ROUTES_DECLARED_UNUSED in repro.memsim.routes",
        )
