"""ENV001 — environment reads belong in ``repro.core.context``.

The run-context refactor made process configuration a *value*: every
``REPRO_*`` variable is resolved exactly once, in
:meth:`repro.core.context.RunContext.from_env` (and its ``*_from_env``
helpers), and flows to consumers as :class:`RunContext` fields. An
``os.environ`` read anywhere else in the library reintroduces ambient
state — two concurrent runs could again observe each other's
configuration, and a sweep worker could silently diverge from its
parent. This rule makes the boundary machine-checked.

Flagged anywhere in ``repro`` outside the allow-list:

- calls: ``os.getenv(...)``, ``os.environ.get/setdefault/pop(...)``;
- subscripts: ``os.environ[...]`` (read or write);
- membership tests: ``... in os.environ``.

Allowed: :mod:`repro.core.context` itself (the single resolution
point) and process entry points (:mod:`repro.cli`,
``repro.__main__``, and the :mod:`repro.analyze` tooling), which may
consult the environment for process-level concerns but must hand the
library values, never ambient state.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional

from repro.analyze.astutil import dotted_name, import_aliases
from repro.analyze.findings import Finding
from repro.analyze.project import ProjectIndex, SourceModule
from repro.analyze.registry import rule

__all__ = ["check_env_reads"]

#: Modules where environment access is legitimate: the one resolution
#: point, plus process entry points.
ALLOWED_MODULES = ("repro.core.context", "repro.cli", "repro.__main__")

#: Package prefixes with the same exemption (developer tooling).
ALLOWED_PACKAGES = ("repro.analyze",)

#: Fully-qualified call targets that read (or mutate) the environment.
_ENV_CALLS = (
    "os.getenv",
    "os.environ.get",
    "os.environ.setdefault",
    "os.environ.pop",
)

_REMEDY = (
    "; resolve it through repro.core.context (RunContext.from_env /"
    " a *_from_env helper) and pass the value down"
)


def _is_allowed(module: SourceModule) -> bool:
    if module.name in ALLOWED_MODULES:
        return True
    return any(
        module.name == p or module.name.startswith(p + ".")
        for p in ALLOWED_PACKAGES
    )


def _resolve(node: ast.expr, aliases: Dict[str, str]) -> Optional[str]:
    """Fully-qualified dotted path of an attribute chain, if static."""
    parts = dotted_name(node)
    if parts is None:
        return None
    base = aliases.get(parts[0], parts[0])
    return ".".join([base] + parts[1:])


@rule(
    id="ENV001",
    name="env-reads",
    description=(
        "os.environ / os.getenv access outside repro.core.context and"
        " the process entry points; configuration must flow through"
        " RunContext values"
    ),
)
def check_env_reads(project: ProjectIndex) -> Iterator[Finding]:
    """Flag ambient environment access outside the context module."""
    info = check_env_reads.info  # type: ignore[attr-defined]
    for module in project.iter_modules("repro"):
        if _is_allowed(module):
            continue
        aliases = import_aliases(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                target = _resolve(node.func, aliases)
                if target in _ENV_CALLS:
                    yield info.finding(
                        module.rel_path, node.lineno,
                        f"environment read {target}(){_REMEDY}",
                    )
            elif isinstance(node, ast.Subscript):
                target = _resolve(node.value, aliases)
                if target == "os.environ":
                    yield info.finding(
                        module.rel_path, node.lineno,
                        f"environment access os.environ[...]{_REMEDY}",
                    )
            elif isinstance(node, ast.Compare):
                for op, comp in zip(node.ops, node.comparators):
                    if not isinstance(op, (ast.In, ast.NotIn)):
                        continue
                    target = _resolve(comp, aliases)
                    if target == "os.environ":
                        yield info.finding(
                            module.rel_path, node.lineno,
                            f"environment probe `in os.environ`{_REMEDY}",
                        )
