"""SCH001 — manifest blocks, the diff gate, and the docs stay in sync.

The run manifest is the repo's regression currency: ``repro diff``
gates runs on it, and ``docs/trace-format.md`` documents its schema
for people writing external tooling. Three surfaces must agree:

- the top-level keys of the dict :meth:`SimReport.manifest`
  (``repro.core.report``) returns,
- ``KNOWN_BLOCKS`` in ``repro.obs.manifest_diff`` — the differ skips
  unknown blocks *by design* (old goldens must keep gating new runs),
  which means a block missing from ``KNOWN_BLOCKS`` is silently
  excluded from regression gating forever,
- the run-manifest schema section of ``docs/trace-format.md``.

This rule extracts the manifest keys statically (dict literals in the
method's return statements, chasing a returned name to its reaching
dict definition plus any ``d["key"] = ...`` inserts) and reports:

- a manifest key absent from ``KNOWN_BLOCKS`` (the silent-gating
  hole), and
- a manifest key absent from the docs page (schema drift), and
- a stale ``KNOWN_BLOCKS`` entry no manifest produces.

The docs check is skipped when the checkout ships no
``docs/trace-format.md`` (rule fixtures, bare packages).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from repro.analyze.astutil import module_constant
from repro.analyze.dataflow import FunctionFlow, walk_function_body
from repro.analyze.findings import Finding
from repro.analyze.project import ProjectIndex
from repro.analyze.registry import rule

__all__ = ["check_manifest_schema"]

#: Module and class producing the run manifest.
REPORT_MODULE = "repro.core.report"
REPORT_CLASS = "SimReport"
REPORT_METHOD = "manifest"

#: Module holding the differ's block whitelist.
DIFF_MODULE = "repro.obs.manifest_diff"
BLOCKS_NAME = "KNOWN_BLOCKS"

#: Doc page carrying the run-manifest schema table.
DOCS_PAGE = "docs/trace-format.md"


def _find_method(tree: ast.Module) -> Optional[ast.FunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == REPORT_CLASS:
            for sub in node.body:
                if (
                    isinstance(sub, ast.FunctionDef)
                    and sub.name == REPORT_METHOD
                ):
                    return sub
    return None


def _dict_keys(expr: ast.expr) -> Set[str]:
    if not isinstance(expr, ast.Dict):
        return set()
    return {
        key.value for key in expr.keys
        if isinstance(key, ast.Constant) and isinstance(key.value, str)
    }


def _manifest_keys(method: ast.FunctionDef) -> Set[str]:
    """Top-level keys of every dict the method can return."""
    flow = FunctionFlow(method)
    keys: Set[str] = set()
    returns: List[ast.Return] = [
        node for node in walk_function_body(method)
        if isinstance(node, ast.Return) and node.value is not None
    ]
    for ret in returns:
        value: Optional[ast.expr] = ret.value
        if isinstance(value, ast.Name):
            name = value.id
            value = flow.reaching(name, ret.lineno)
            # d["key"] = ... inserts between the def and the return
            # extend the literal's key set.
            for node in walk_function_body(method):
                if (
                    isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Subscript)
                ):
                    sub = node.targets[0]
                    if (
                        isinstance(sub.value, ast.Name)
                        and sub.value.id == name
                        and isinstance(sub.slice, ast.Constant)
                        and isinstance(sub.slice.value, str)
                    ):
                        keys.add(sub.slice.value)
        if value is not None:
            keys.update(_dict_keys(value))
    return keys


@rule(
    id="SCH001",
    name="manifest-schema-sync",
    description=(
        "every SimReport.manifest block key must be listed in"
        " manifest_diff.KNOWN_BLOCKS and documented in"
        " docs/trace-format.md, and KNOWN_BLOCKS must carry no stale"
        " entries"
    ),
)
def check_manifest_schema(project: ProjectIndex) -> Iterator[Finding]:
    """Cross-check manifest keys against the diff gate and the docs."""
    info = check_manifest_schema.info  # type: ignore[attr-defined]
    report_mod = project.get(REPORT_MODULE)
    if report_mod is None:
        return
    method = _find_method(report_mod.tree)
    if method is None:
        yield info.finding(
            report_mod.rel_path, 1,
            f"{REPORT_MODULE} no longer defines"
            f" {REPORT_CLASS}.{REPORT_METHOD}(); the manifest-schema"
            " check has nothing to anchor to",
        )
        return
    keys = _manifest_keys(method)
    if not keys:
        yield info.finding(
            report_mod.rel_path, method.lineno,
            f"{REPORT_CLASS}.{REPORT_METHOD}() returns no statically"
            " visible dict literal; keep the manifest a literal so"
            " the schema stays checkable",
        )
        return

    diff_mod = project.get(DIFF_MODULE)
    known: Set[str] = set()
    blocks_line = 0
    if diff_mod is not None:
        value, blocks_line = module_constant(diff_mod.tree, BLOCKS_NAME)
        if isinstance(value, (set, frozenset, tuple, list)):
            known = {v for v in value if isinstance(v, str)}
        for key in sorted(keys - known):
            yield info.finding(
                report_mod.rel_path, method.lineno,
                f"manifest block {key!r} is missing from"
                f" {DIFF_MODULE}.{BLOCKS_NAME}; the differ would skip"
                " it silently and the block would never gate a"
                " regression",
            )
        if known:
            for stale in sorted(known - keys):
                yield info.finding(
                    diff_mod.rel_path, blocks_line,
                    f"{BLOCKS_NAME} entry {stale!r} matches no"
                    f" {REPORT_CLASS}.{REPORT_METHOD}() block; drop"
                    " the stale entry or produce the block",
                )

    docs = project.doc_text(DOCS_PAGE)
    if docs is not None:
        for key in sorted(keys):
            if f'"{key}"' not in docs:
                yield info.finding(
                    report_mod.rel_path, method.lineno,
                    f"manifest block {key!r} is not documented in"
                    f" {DOCS_PAGE}; external tooling reads the schema"
                    " from that page",
                )
