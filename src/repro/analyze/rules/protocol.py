"""PRT001 — backends implement the HierarchyBackend surface, registered.

The pluggable-replay design only works if every module under
``memsim/backends/`` is a well-formed plug: it defines a
``HierarchyBackend`` subclass, registers it by name
(``@register_backend``), exports it from the package hub, and
overrides only hooks that actually exist on the protocol — a typo'd
``acount`` method would silently fall back to the base implementation
and drop that backend's accounting. Checked statically per backend
module:

- at least one ``HierarchyBackend`` subclass exists;
- each subclass carries a ``@register_backend("name")`` decorator and
  names are unique across the package;
- overridden protocol hooks match the base signature (same positional
  parameter names);
- public methods that are *near-misses* of a hook name (``acount``,
  ``finalise``) are flagged; genuinely new helpers are fine;
- ``__init__`` chains to ``super().__init__`` so shared state
  (config, microcode slots, DRAM ranges) is initialized;
- the class is re-exported by ``backends/__init__`` and listed in its
  ``__all__``.
"""

from __future__ import annotations

import ast
import difflib
from typing import Dict, Iterator, List, Optional, Set

from repro.analyze.astutil import string_tuple_constant
from repro.analyze.findings import Finding
from repro.analyze.project import ProjectIndex, SourceModule
from repro.analyze.registry import rule

__all__ = ["check_protocol_completeness"]

BACKENDS_PACKAGE = "repro.memsim.backends"
BASE_MODULE = "repro.memsim.backends.base"
#: Modules in the package that are not backend plugs.
_INFRA_MODULES = (BACKENDS_PACKAGE, BASE_MODULE,
                  "repro.memsim.backends.registry")


def _class_defs(tree: ast.Module) -> List[ast.ClassDef]:
    return [n for n in tree.body if isinstance(n, ast.ClassDef)]


def _base_surface(base_mod: SourceModule) -> Dict[str, List[str]]:
    """Hook name → positional parameter names of HierarchyBackend."""
    for cls in _class_defs(base_mod.tree):
        if cls.name != "HierarchyBackend":
            continue
        surface: Dict[str, List[str]] = {}
        for node in cls.body:
            if isinstance(node, ast.FunctionDef):
                surface[node.name] = [a.arg for a in node.args.args]
        return surface
    return {}


def _is_property(fn: ast.FunctionDef) -> bool:
    return any(
        isinstance(d, ast.Name) and d.id == "property"
        for d in fn.decorator_list
    )


def _registered_name(cls: ast.ClassDef) -> Optional[str]:
    """The ``@register_backend("name")`` argument, if present."""
    for deco in cls.decorator_list:
        if (
            isinstance(deco, ast.Call)
            and isinstance(deco.func, ast.Name)
            and deco.func.id == "register_backend"
            and deco.args
            and isinstance(deco.args[0], ast.Constant)
            and isinstance(deco.args[0].value, str)
        ):
            return deco.args[0].value
    return None


def _subclasses_backend(cls: ast.ClassDef) -> bool:
    return any(
        (isinstance(b, ast.Name) and b.id == "HierarchyBackend")
        or (isinstance(b, ast.Attribute) and b.attr == "HierarchyBackend")
        for b in cls.bases
    )


def _calls_super_init(fn: ast.FunctionDef) -> bool:
    for node in ast.walk(fn):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "__init__"
            and isinstance(node.func.value, ast.Call)
            and isinstance(node.func.value.func, ast.Name)
            and node.func.value.func.id == "super"
        ):
            return True
    return False


def _hub_exports(hub: SourceModule) -> Set[str]:
    """Names imported by ``backends/__init__`` and listed in __all__."""
    imported: Set[str] = set()
    for node in hub.tree.body:
        if isinstance(node, ast.ImportFrom):
            imported |= {a.asname or a.name for a in node.names}
    exported = string_tuple_constant(hub.tree, "__all__")
    return imported & exported if exported else imported


@rule(
    id="PRT001",
    name="protocol-completeness",
    description=(
        "every backends/ module defines a registered HierarchyBackend"
        " subclass whose overrides match the protocol surface and is"
        " exported from the package hub"
    ),
)
def check_protocol_completeness(
    project: ProjectIndex,
) -> Iterator[Finding]:
    """Validate each backend plug against the protocol surface."""
    info = check_protocol_completeness.info  # type: ignore[attr-defined]
    base_mod = project.get(BASE_MODULE)
    if base_mod is None:
        return
    surface = _base_surface(base_mod)
    if not surface:
        yield info.finding(
            base_mod.rel_path, 1,
            "backends/base.py no longer defines HierarchyBackend; the"
            " protocol check has nothing to anchor to",
        )
        return
    hook_names = sorted(surface)

    hub = project.get(BACKENDS_PACKAGE)
    hub_names = _hub_exports(hub) if hub is not None else set()

    seen_names: Dict[str, str] = {}
    for module in project.iter_modules(BACKENDS_PACKAGE):
        if module.name in _INFRA_MODULES:
            continue
        backend_classes = [
            c for c in _class_defs(module.tree) if _subclasses_backend(c)
        ]
        if not backend_classes:
            yield info.finding(
                module.rel_path, 1,
                "backend module defines no HierarchyBackend subclass;"
                " move helpers elsewhere or add the backend class",
            )
            continue
        for cls in backend_classes:
            reg_name = _registered_name(cls)
            if reg_name is None:
                yield info.finding(
                    module.rel_path, cls.lineno,
                    f"{cls.name} subclasses HierarchyBackend but is"
                    " not decorated with @register_backend(name);"
                    " unregistered backends are unreachable from"
                    " run_system/the CLI",
                )
            elif reg_name in seen_names:
                yield info.finding(
                    module.rel_path, cls.lineno,
                    f"backend name {reg_name!r} already registered by"
                    f" {seen_names[reg_name]}; names must be unique",
                )
            else:
                seen_names[reg_name] = cls.name

            init_fn: Optional[ast.FunctionDef] = None
            for node in cls.body:
                if not isinstance(node, ast.FunctionDef):
                    continue
                if node.name == "__init__":
                    init_fn = node
                    continue
                if _is_property(node) or node.name.startswith("_"):
                    continue
                if node.name in surface:
                    base_args = surface[node.name]
                    own_args = [a.arg for a in node.args.args]
                    if own_args != base_args:
                        yield info.finding(
                            module.rel_path, node.lineno,
                            f"{cls.name}.{node.name} signature"
                            f" ({', '.join(own_args)}) does not match"
                            " the HierarchyBackend hook"
                            f" ({', '.join(base_args)})",
                        )
                else:
                    near = difflib.get_close_matches(
                        node.name, hook_names, n=1, cutoff=0.75
                    )
                    if near:
                        yield info.finding(
                            module.rel_path, node.lineno,
                            f"{cls.name}.{node.name} is not a"
                            " HierarchyBackend hook — did you mean"
                            f" {near[0]!r}? A typo here silently"
                            " falls back to the base implementation",
                        )
            if init_fn is not None and not _calls_super_init(init_fn):
                yield info.finding(
                    module.rel_path, init_fn.lineno,
                    f"{cls.name}.__init__ never calls"
                    " super().__init__(config); shared backend state"
                    " (config, microcode, DRAM ranges) stays"
                    " uninitialized",
                )
            if hub is not None and cls.name not in hub_names:
                yield info.finding(
                    module.rel_path, cls.lineno,
                    f"{cls.name} is not re-exported (imported and"
                    " listed in __all__) by backends/__init__.py",
                )
