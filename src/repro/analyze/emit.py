"""Render battery results as text, JSON, or SARIF 2.1.0.

The text form is for humans at the terminal; the JSON form
(``omega-repro/lint/v2``) is a stable machine surface for scripts;
the SARIF form follows the 2.1.0 document shape so CI code-scanning
uploads and editors can ingest it.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.analyze.findings import Finding, RuleInfo, Severity

__all__ = ["LINT_SCHEMA", "SARIF_VERSION", "to_text", "to_json", "to_sarif"]

#: Schema tag of the machine-readable JSON report. v2 added the
#: baseline surface: a ``baselined`` list plus its summary count.
LINT_SCHEMA = "omega-repro/lint/v2"

#: SARIF specification version emitted by :func:`to_sarif`.
SARIF_VERSION = "2.1.0"

_SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: Finding severity → SARIF result level.
_SARIF_LEVELS = {Severity.ERROR: "error", Severity.WARNING: "warning"}


def to_text(findings: List[Finding], suppressed: int = 0,
            baselined: int = 0) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines = [f.format() for f in findings]
    n_err = sum(1 for f in findings if f.severity == Severity.ERROR)
    n_warn = len(findings) - n_err
    summary = (
        f"{len(findings)} finding(s): {n_err} error(s),"
        f" {n_warn} warning(s), {suppressed} suppressed,"
        f" {baselined} baselined"
    )
    lines.append(summary)
    return "\n".join(lines) + "\n"


def _finding_dict(f: Finding) -> Dict[str, object]:
    return {
        "rule": f.rule,
        "severity": f.severity,
        "path": f.path,
        "line": f.line,
        "message": f.message,
    }


def to_json(findings: List[Finding],
            suppressed: List[Finding],
            baselined: Optional[List[Finding]] = None) -> Dict[str, object]:
    """Machine-readable report document (``omega-repro/lint/v2``)."""
    accepted = baselined if baselined is not None else []
    return {
        "schema": LINT_SCHEMA,
        "summary": {
            "findings": len(findings),
            "errors": sum(
                1 for f in findings if f.severity == Severity.ERROR
            ),
            "warnings": sum(
                1 for f in findings if f.severity == Severity.WARNING
            ),
            "suppressed": len(suppressed),
            "baselined": len(accepted),
        },
        "findings": [_finding_dict(f) for f in findings],
        "suppressed": [_finding_dict(f) for f in suppressed],
        "baselined": [_finding_dict(f) for f in accepted],
    }


def to_sarif(findings: List[Finding],
             rules: List[RuleInfo],
             tool_version: str = "0") -> Dict[str, object]:
    """SARIF 2.1.0 document for CI code-scanning ingestion.

    One run, one driver (``repro-lint``), every registered rule in
    the driver's rules table (so suppressed-to-zero batteries still
    advertise what was checked), one result per finding with a
    repo-relative artifact location.
    """
    rule_index = {info.id: i for i, info in enumerate(rules)}
    results: List[Dict[str, object]] = []
    for f in findings:
        result: Dict[str, object] = {
            "ruleId": f.rule,
            "level": _SARIF_LEVELS.get(f.severity, "warning"),
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": f.path,
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {"startLine": max(f.line, 1)},
                    }
                }
            ],
        }
        if f.rule in rule_index:
            result["ruleIndex"] = rule_index[f.rule]
        results.append(result)
    return {
        "$schema": _SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "version": tool_version,
                        "informationUri": (
                            "https://github.com/omega-repro/omega-repro"
                        ),
                        "rules": [
                            {
                                "id": info.id,
                                "name": info.name,
                                "shortDescription": {
                                    "text": info.description
                                },
                                "defaultConfiguration": {
                                    "level": _SARIF_LEVELS.get(
                                        info.severity, "warning"
                                    ),
                                },
                            }
                            for info in rules
                        ],
                    }
                },
                "originalUriBaseIds": {
                    "SRCROOT": {"description": {
                        "text": "repository checkout root",
                    }},
                },
                "results": results,
            }
        ],
    }


def dump_json(doc: Dict[str, object]) -> str:
    """Pretty-print a report document deterministically."""
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"
