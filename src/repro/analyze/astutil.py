"""Small AST helpers shared by the rule implementations.

Nothing here is repo-specific: import-alias resolution (so
``np.random.rand`` resolves to ``numpy.random.rand`` regardless of
how numpy was imported), dotted-name rendering of attribute chains,
and literal extraction for module-level constants.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

__all__ = [
    "import_aliases",
    "dotted_name",
    "resolve_call_target",
    "module_constant",
    "string_tuple_constant",
]


def import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Local name → fully qualified module/object path.

    ``import numpy as np`` maps ``np → numpy``; ``from datetime
    import datetime`` maps ``datetime → datetime.datetime``; plain
    ``import time`` maps ``time → time``. Only top-of-chain names are
    mapped — attribute chains resolve via
    :func:`resolve_call_target`.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                full = alias.name if alias.asname else alias.name.split(".")[0]
                aliases[local] = full
        elif isinstance(node, ast.ImportFrom):
            if node.level or node.module is None:
                continue  # relative imports never name stdlib/numpy
            for alias in node.names:
                local = alias.asname or alias.name
                aliases[local] = f"{node.module}.{alias.name}"
    return aliases


def dotted_name(node: ast.expr) -> Optional[List[str]]:
    """Attribute chain as a name list (``a.b.c`` → ``[a, b, c]``)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


def resolve_call_target(func: ast.expr,
                        aliases: Dict[str, str]) -> Optional[str]:
    """Fully qualified dotted path of a call target, if resolvable.

    Resolves the chain's base name through the module's import
    aliases: with ``import numpy as np``, ``np.random.rand`` becomes
    ``numpy.random.rand``; an unimported base name is returned as
    written (locals shadowing imports are rare enough to ignore for a
    linter).
    """
    parts = dotted_name(func)
    if parts is None:
        return None
    base = aliases.get(parts[0], parts[0])
    return ".".join([base] + parts[1:])


def module_constant(tree: ast.Module, name: str) -> Tuple[object, int]:
    """Value and line of a top-level literal assignment, if present.

    Returns ``(value, lineno)``; ``(None, 0)`` when the name is not
    assigned a literal at module level. Handles plain literals plus
    ``frozenset({...})`` / ``set({...})`` / ``tuple((...))`` wrappers.
    """
    for node in tree.body:
        target: Optional[ast.expr] = None
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            target, value = node.target, node.value
        if not (isinstance(target, ast.Name) and target.id == name):
            continue
        assert value is not None
        expr = value
        if (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Name)
            and expr.func.id in ("frozenset", "set", "tuple")
            and len(expr.args) == 1
        ):
            expr = expr.args[0]
        try:
            return ast.literal_eval(expr), node.lineno
        except (ValueError, SyntaxError):
            return None, node.lineno
    return None, 0


def string_tuple_constant(tree: ast.Module, name: str) -> Set[str]:
    """A module-level tuple/set/list of strings, as a set ('' safe)."""
    value, _ = module_constant(tree, name)
    if isinstance(value, (tuple, list, set, frozenset)):
        return {v for v in value if isinstance(v, str)}
    return set()
