"""Finding and rule-metadata value types for the invariant linter.

A :class:`Finding` is one violation of one rule at one source
location, repo-relative so reports are stable across machines.
:class:`RuleInfo` is a rule's identity card — id, human name,
severity, one-line description — shared by the registry, the text
report, and the SARIF ``rules`` table.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Severity", "Finding", "RuleInfo"]


class Severity:
    """Finding severities (string constants, SARIF-compatible)."""

    ERROR = "error"
    WARNING = "warning"

    #: Every legal severity value, in decreasing order of badness.
    ALL = (ERROR, WARNING)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    #: Rule id (``DET001`` style).
    rule: str
    #: ``error`` or ``warning`` (see :class:`Severity`).
    severity: str
    #: Repo-relative posix path of the offending file.
    path: str
    #: 1-based line number (0 for whole-file findings).
    line: int
    #: Human-readable description of the violation.
    message: str

    def sort_key(self) -> "tuple[str, int, str, str]":
        """Stable report order: path, line, rule, message."""
        return (self.path, self.line, self.rule, self.message)

    def format(self) -> str:
        """One-line ``path:line: RULE severity: message`` rendering."""
        return (
            f"{self.path}:{self.line}: {self.rule}"
            f" {self.severity}: {self.message}"
        )


@dataclass(frozen=True)
class RuleInfo:
    """Identity and default severity of one registered rule."""

    #: Stable rule id (``DET001`` style) — what suppressions name.
    id: str
    #: Short kebab-case name (``determinism``).
    name: str
    #: Default severity of this rule's findings.
    severity: str
    #: One-line description for reports and the SARIF rules table.
    description: str

    def finding(self, path: str, line: int, message: str) -> Finding:
        """Construct a :class:`Finding` carrying this rule's identity."""
        return Finding(
            rule=self.id,
            severity=self.severity,
            path=path,
            line=line,
            message=message,
        )
