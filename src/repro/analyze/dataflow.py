"""Intraprocedural dataflow: reaching definitions and lock regions.

Two small frameworks the whole-program rules share:

- :class:`FunctionFlow` — a linear reaching-definitions approximation
  over one function body: ``reaching(name, lineno)`` answers "what
  expression was last assigned to ``name`` before this line". Linear
  (source order, no branch merging) is the right fidelity for a
  linter: the codebase's accumulators and executor handles are defined
  once, straight-line, before use.
- :class:`LockContext` — "accessed-under-lock" tracking for ``with
  self._lock:`` regions: every qualifying ``with`` statement's line
  span is recorded, and ``covers(lineno)`` answers whether a statement
  executes inside one.

Neither framework imports the code it models — everything is derived
from the AST alone.
"""

from __future__ import annotations

import ast
from typing import Callable, Dict, Iterator, List, Optional, Tuple

__all__ = ["FunctionFlow", "LockContext", "walk_function_body"]


def walk_function_body(func: ast.AST) -> Iterator[ast.AST]:
    """Yield every node of ``func``'s own body, skipping nested defs.

    Nested function/class definitions are their own analysis units —
    statements inside them do not execute when the outer function runs.
    The nested ``def``/``class`` node itself is still yielded (so
    callers can see that it exists), but its body is not entered.
    """
    stack: List[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


class FunctionFlow:
    """Linear reaching-definitions view of one function body.

    Records, in source order, every binding of a local name: plain and
    annotated assignments keep their value expression; ``with ... as
    name`` keeps the context expression; loop targets and tuple
    unpacking record an *opaque* binding (the binding is known, the
    value is not), which deliberately blocks resolution — a name whose
    last binding is opaque resolves to ``None``.
    """

    def __init__(self, func: ast.AST) -> None:
        self.func = func
        #: name → [(lineno, value expression or None)], source order.
        self._defs: Dict[str, List[Tuple[int, Optional[ast.expr]]]] = {}
        #: parameter name → annotation expression (or None).
        self._params: Dict[str, Optional[ast.expr]] = {}
        args = getattr(func, "args", None)
        if args is not None:
            every = (
                list(args.posonlyargs) + list(args.args)
                + list(args.kwonlyargs)
                + ([args.vararg] if args.vararg else [])
                + ([args.kwarg] if args.kwarg else [])
            )
            for a in every:
                self._params[a.arg] = a.annotation
        for node in walk_function_body(func):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    self._bind_target(target, node.value, node.lineno)
            elif isinstance(node, ast.AnnAssign):
                self._bind_target(node.target, node.value, node.lineno)
            elif isinstance(node, ast.AugAssign):
                # x += e keeps x's original definition (the accumulator
                # target's identity is what the rules ask about).
                continue
            elif isinstance(node, ast.With):
                for item in node.items:
                    if item.optional_vars is not None:
                        self._bind_target(
                            item.optional_vars, item.context_expr,
                            node.lineno,
                        )
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                self._bind_target(node.target, None, node.lineno)
        for defs in self._defs.values():
            defs.sort(key=lambda d: d[0])

    def _bind_target(self, target: ast.expr,
                     value: Optional[ast.expr], lineno: int) -> None:
        if isinstance(target, ast.Name):
            self._defs.setdefault(target.id, []).append((lineno, value))
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind_target(elt, None, lineno)
        # attribute/subscript targets are not local-name bindings

    # -- queries -------------------------------------------------------
    def reaching(self, name: str, lineno: int) -> Optional[ast.expr]:
        """Value expression of the last binding of ``name`` before
        ``lineno`` (inclusive), or ``None`` when there is none or the
        binding is opaque (loop target, tuple unpack)."""
        best: Optional[Tuple[int, Optional[ast.expr]]] = None
        for defined_at, value in self._defs.get(name, []):
            if defined_at <= lineno:
                best = (defined_at, value)
            else:
                break
        return best[1] if best else None

    def is_param(self, name: str) -> bool:
        """Whether ``name`` is one of the function's parameters."""
        return name in self._params

    def is_local(self, name: str) -> bool:
        """Whether ``name`` is bound anywhere in the function body."""
        return name in self._defs or name in self._params

    def param_annotation(self, name: str) -> Optional[ast.expr]:
        """The annotation expression of parameter ``name``, if any."""
        return self._params.get(name)


class LockContext:
    """Which lines of a function execute under a held lock.

    ``is_lock_expr`` decides whether one ``with`` item's context
    expression acquires a lock (the race rule passes a predicate that
    recognizes ``self.<lock attribute>``). Every qualifying ``with``
    statement contributes its full line span; ``covers(lineno)`` is
    then a span-containment test — lexical nesting is exactly the
    with-statement's dynamic extent for straight-line code.
    """

    def __init__(self, func: ast.AST,
                 is_lock_expr: Callable[[ast.expr], bool]) -> None:
        self._spans: List[Tuple[int, int]] = []
        for node in walk_function_body(func):
            if not isinstance(node, (ast.With, ast.AsyncWith)):
                continue
            if any(is_lock_expr(item.context_expr) for item in node.items):
                end = getattr(node, "end_lineno", None) or node.lineno
                self._spans.append((node.lineno, end))

    def covers(self, lineno: int) -> bool:
        """Whether ``lineno`` falls inside a lock-guarded region."""
        return any(lo <= lineno <= hi for lo, hi in self._spans)
