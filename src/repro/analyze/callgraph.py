"""Project-wide call graph with thread-root modeling.

Built once per :class:`~repro.analyze.project.ProjectIndex` (cached on
the index as ``project.call_graph()``) and shared by the
whole-program rules. Three layers:

**Symbol table** — every function, method and class in the project,
keyed by a qualified name (``repro.serve.jobs:JobManager.submit``),
with per-class base lists and the ``self.attr = ...`` initializer
expressions the receiver-type resolution feeds on.

**Edges** — def/use resolution across modules, deliberately
conservative (a linter must not invent reachability):

- plain ``Name`` calls resolve through import aliases to project
  functions and constructors;
- ``self.m()`` resolves through the receiver's class, then its
  project bases, then its project subclasses (virtual dispatch);
- ``super().m()`` resolves to the first project base defining ``m``;
- ``x.m()`` where ``x``'s reaching definition (or parameter
  annotation) names a project class resolves to that class and its
  subclasses; ``x = get_backend(...)`` resolves to every
  ``@register_backend`` class — the pluggable backend surface;
- ``self.attr.m()`` resolves through the class's recorded
  ``self.attr = ...`` initializer;
- anything still unresolved falls back to *unique-name CHA*: the edge
  is added only when exactly one project class defines a method of
  that name, so common names (``.get``, ``.items``, ``.pop``) never
  produce edges.

**Thread roots** — where concurrent execution enters the project:

- the ambient root (the main thread): every public or dunder
  function/method, closed over the edges;
- one root per ``threading.Thread(target=...)`` spawn site;
- one *many-thread* root per ``ThreadPoolExecutor``-``submit`` site
  (``ProcessPoolExecutor`` pools are excluded — processes share no
  memory, so they are not racing anybody);
- one many-thread root per ``do_*`` method of a
  ``BaseHTTPRequestHandler`` subclass (``ThreadingHTTPServer`` runs
  each request on its own thread).
"""

from __future__ import annotations

import ast
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.analyze.astutil import import_aliases, resolve_call_target
from repro.analyze.dataflow import FunctionFlow, walk_function_body

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analyze.project import ProjectIndex

__all__ = ["CallGraph", "ClassRef", "FuncRef", "SpawnSite", "ThreadRoot"]

#: Dotted targets that spawn one extra thread per call site.
_THREAD_TYPES = ("threading.Thread", "threading.Timer")

#: Dotted executor types whose ``submit`` fans work across threads.
_THREAD_POOL_TYPES = (
    "concurrent.futures.ThreadPoolExecutor",
    "concurrent.futures.thread.ThreadPoolExecutor",
)

#: Executor types that do NOT share memory (never thread roots).
_PROCESS_POOL_TYPES = (
    "concurrent.futures.ProcessPoolExecutor",
    "concurrent.futures.process.ProcessPoolExecutor",
)

#: Base classes whose ``do_*`` methods run on per-request threads.
_HANDLER_BASES = ("http.server.BaseHTTPRequestHandler",)


class FuncRef:
    """One function or method definition in the project."""

    def __init__(self, qual: str, module: str, name: str,
                 node: ast.AST, cls: Optional[str]) -> None:
        #: Qualified name: ``module:Class.method`` / ``module:func``.
        self.qual = qual
        #: Dotted module name the definition lives in.
        self.module = module
        #: Bare function/method name.
        self.name = name
        #: The ``ast.FunctionDef`` / ``ast.AsyncFunctionDef`` node.
        self.node = node
        #: Qualified class key (``module:Class``) for methods.
        self.cls = cls
        #: Lazily built dataflow view of the body.
        self._flow: Optional[FunctionFlow] = None

    @property
    def flow(self) -> FunctionFlow:
        """Reaching-definitions view of this function's body."""
        if self._flow is None:
            self._flow = FunctionFlow(self.node)
        return self._flow


class ClassRef:
    """One class definition: bases, methods, attribute initializers."""

    def __init__(self, qual: str, module: str, name: str,
                 node: ast.ClassDef, bases: List[str]) -> None:
        #: Qualified class key (``module:Class``).
        self.qual = qual
        self.module = module
        self.name = name
        self.node = node
        #: Base names, import-alias resolved to dotted paths.
        self.bases = bases
        #: Method name → :class:`FuncRef`.
        self.methods: Dict[str, FuncRef] = {}
        #: Attribute name → list of ``self.attr = <expr>`` initializer
        #: expressions found anywhere in the class's methods.
        self.attr_inits: Dict[str, List[ast.expr]] = {}
        #: Whether the class carries a ``@register_backend`` decorator.
        self.registered_backend = False


class SpawnSite:
    """One thread-creation site and the target it resolves to."""

    def __init__(self, kind: str, module: str, lineno: int,
                 target: Optional[str]) -> None:
        #: ``"thread"`` (one extra thread) or ``"pool"`` (many).
        self.kind = kind
        self.module = module
        self.lineno = lineno
        #: Qualified name of the spawned function, if resolvable.
        self.target = target


class ThreadRoot:
    """One source of concurrent execution over the project."""

    def __init__(self, label: str, entries: Set[str], many: bool) -> None:
        #: Human-readable root label (shows up in findings).
        self.label = label
        #: Qualified names execution enters the project through.
        self.entries = entries
        #: Whether the root itself runs on more than one thread
        #: (worker pools, per-request handler threads).
        self.many = many


class CallGraph:
    """Symbol table + resolved call edges + thread roots."""

    def __init__(self, project: "ProjectIndex") -> None:
        self.functions: Dict[str, FuncRef] = {}
        self.classes: Dict[str, ClassRef] = {}
        #: Simple class name → every project class with that name.
        self._classes_by_name: Dict[str, List[ClassRef]] = {}
        #: Method name → classes defining it (unique-name CHA table).
        self._method_owners: Dict[str, List[ClassRef]] = {}
        #: Caller qualified name → callee qualified names.
        self.edges: Dict[str, Set[str]] = {}
        self.spawns: List[SpawnSite] = []
        #: ``do_*`` methods of request-handler subclasses.
        self.handler_methods: List[str] = []
        self._aliases: Dict[str, Dict[str, str]] = {}
        self._children: Optional[Dict[str, List[ClassRef]]] = None
        self._reach_cache: Dict["frozenset[str]", Set[str]] = {}
        self._collect(project)
        self._resolve_edges()

    # -- symbol table --------------------------------------------------
    def _collect(self, project: "ProjectIndex") -> None:
        for module in project.iter_modules():
            self._aliases[module.name] = import_aliases(module.tree)
            self._collect_scope(module.name, module.tree.body, prefix="",
                                cls=None)
        for cls in self.classes.values():
            self._classes_by_name.setdefault(cls.name, []).append(cls)
            for mname in cls.methods:
                self._method_owners.setdefault(mname, []).append(cls)

    def _collect_scope(self, module: str, body: Sequence[ast.stmt],
                       prefix: str, cls: Optional[ClassRef]) -> None:
        # walk compound statements too (a def inside `if`/`try` is
        # still a definition of this scope), without entering nested
        # function/class bodies — those recurse with their own prefix.
        stmts: List[ast.stmt] = list(body)
        while stmts:
            node = stmts.pop(0)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                local = f"{prefix}{node.name}"
                qual = f"{module}:{local}"
                ref = FuncRef(qual, module, node.name, node,
                              cls.qual if cls else None)
                self.functions[qual] = ref
                if cls is not None:
                    cls.methods[node.name] = ref
                    self._record_attr_inits(cls, node)
                # nested defs are their own units; a "defines" edge
                # keeps them reachable whenever the definer is.
                self._collect_scope(module, node.body,
                                    prefix=f"{local}.", cls=None)
                outer = f"{module}:{prefix[:-1]}" if prefix else ""
                if outer in self.functions:
                    self.edges.setdefault(outer, set()).add(qual)
            elif isinstance(node, ast.ClassDef):
                qual = f"{module}:{prefix}{node.name}"
                aliases = self._aliases[module]
                bases = []
                for base in node.bases:
                    dotted = resolve_call_target(base, aliases)
                    if dotted:
                        bases.append(dotted)
                ref = ClassRef(qual, module, node.name, node, bases)
                for deco in node.decorator_list:
                    target = deco.func if isinstance(deco, ast.Call) else deco
                    dotted = resolve_call_target(target, aliases)
                    if dotted and dotted.split(".")[-1] == "register_backend":
                        ref.registered_backend = True
                self.classes[qual] = ref
                self._collect_scope(module, node.body,
                                    prefix=f"{prefix}{node.name}.", cls=ref)
            elif isinstance(node, (ast.If, ast.Try, ast.With, ast.For,
                                   ast.While)):
                for field in ("body", "orelse", "finalbody", "handlers"):
                    for sub in getattr(node, field, []) or []:
                        if isinstance(sub, ast.ExceptHandler):
                            stmts.extend(sub.body)
                        elif isinstance(sub, ast.stmt):
                            stmts.append(sub)

    def _record_attr_inits(self, cls: ClassRef, method: ast.AST) -> None:
        for node in walk_function_body(method):
            if isinstance(node, ast.Assign):
                targets = node.targets
                value = node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets = [node.target]
                value = node.value
            else:
                continue
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    cls.attr_inits.setdefault(target.attr, []).append(
                        value
                    )

    # -- class lookups -------------------------------------------------
    def class_by_dotted(self, dotted: str) -> Optional[ClassRef]:
        """Project class for a dotted path (``repro.x.y.Cls``) or a
        bare name that is unique project-wide."""
        if "." in dotted:
            module, _, name = dotted.rpartition(".")
            ref = self.classes.get(f"{module}:{name}")
            if ref is not None:
                return ref
        candidates = self._classes_by_name.get(dotted.split(".")[-1], [])
        if len(candidates) == 1 and "." not in dotted:
            return candidates[0]
        return None

    def subclasses(self, cls: ClassRef) -> List[ClassRef]:
        """Transitive project subclasses of ``cls``."""
        if self._children is None:
            self._children = {}
            for cand in self.classes.values():
                for base in cand.bases:
                    resolved = self.class_by_dotted(base)
                    if resolved is not None:
                        self._children.setdefault(
                            resolved.qual, []
                        ).append(cand)
        out: List[ClassRef] = []
        todo = [cls]
        while todo:
            cur = todo.pop()
            for child in self._children.get(cur.qual, []):
                if child not in out and child is not cls:
                    out.append(child)
                    todo.append(child)
        return out

    def mro_method(self, cls: ClassRef, name: str) -> Optional[FuncRef]:
        """``cls``'s method ``name``, searching project bases upward."""
        seen: Set[str] = set()
        todo = [cls]
        while todo:
            cur = todo.pop(0)
            if cur.qual in seen:
                continue
            seen.add(cur.qual)
            if name in cur.methods:
                return cur.methods[name]
            for base in cur.bases:
                resolved = self.class_by_dotted(base)
                if resolved is not None:
                    todo.append(resolved)
        return None

    def inherits_from(self, cls: ClassRef, dotted_bases: Tuple[str, ...],
                      ) -> bool:
        """Whether ``cls`` transitively inherits any of the dotted
        (non-project) base paths."""
        seen: Set[str] = set()
        todo = [cls]
        while todo:
            cur = todo.pop()
            if cur.qual in seen:
                continue
            seen.add(cur.qual)
            for base in cur.bases:
                if base in dotted_bases:
                    return True
                resolved = self.class_by_dotted(base)
                if resolved is not None:
                    todo.append(resolved)
        return False

    def registered_backends(self) -> List[ClassRef]:
        """Every ``@register_backend``-decorated class."""
        return [c for c in self.classes.values() if c.registered_backend]

    def classes_in(self, prefixes: Tuple[str, ...]) -> Iterator[ClassRef]:
        """Classes whose module matches any dotted prefix."""
        for qual in sorted(self.classes):
            cls = self.classes[qual]
            if any(
                cls.module == p or cls.module.startswith(p + ".")
                for p in prefixes
            ):
                yield cls

    # -- edge resolution -----------------------------------------------
    def _resolve_edges(self) -> None:
        for qual in sorted(self.functions):
            self._resolve_function(self.functions[qual])

    def _resolve_function(self, ref: FuncRef) -> None:
        aliases = self._aliases[ref.module]
        out = self.edges.setdefault(ref.qual, set())
        cls = self.classes.get(ref.cls) if ref.cls else None
        for node in walk_function_body(ref.node):
            if not isinstance(node, ast.Call):
                continue
            self._detect_spawn(ref, node, aliases, out)
            for callee in self._resolve_call(ref, cls, node, aliases):
                out.add(callee.qual)

    def _resolve_call(self, ref: FuncRef, cls: Optional[ClassRef],
                      call: ast.Call,
                      aliases: Dict[str, str]) -> List[FuncRef]:
        func = call.func
        if isinstance(func, ast.Name):
            return self._resolve_name_call(ref, func.id, aliases)
        if not isinstance(func, ast.Attribute):
            return []
        receiver = func.value
        method = func.attr
        # super().m() → first project base defining m
        if (
            isinstance(receiver, ast.Call)
            and isinstance(receiver.func, ast.Name)
            and receiver.func.id == "super"
            and cls is not None
        ):
            for base in cls.bases:
                base_cls = self.class_by_dotted(base)
                if base_cls is not None:
                    found = self.mro_method(base_cls, method)
                    if found is not None:
                        return [found]
            return []
        # self.m() → own class, bases, subclasses
        if isinstance(receiver, ast.Name) and receiver.id == "self":
            if cls is not None:
                found = self.mro_method(cls, method)
                targets = [found] if found else []
                for sub in self.subclasses(cls):
                    if method in sub.methods:
                        targets.append(sub.methods[method])
                if targets:
                    return targets
                # self.<attr>() where <attr> is a stored callable —
                # opaque; do not guess via CHA.
                if method in cls.attr_inits:
                    return []
            return self._cha(method)
        # module.func() through import aliases
        dotted = resolve_call_target(func, aliases)
        if dotted is not None:
            target = self._project_function(dotted)
            if target is not None:
                return [target]
        # x.m() / self.attr.m() → type the receiver, then dispatch
        receiver_classes = self._receiver_classes(ref, cls, receiver, aliases)
        if receiver_classes is not None:
            targets = []
            for rcls in receiver_classes:
                found = self.mro_method(rcls, method)
                if found is not None:
                    targets.append(found)
            return targets
        if isinstance(receiver, ast.Name) and receiver.id not in aliases:
            return self._cha(method)
        return []

    def _resolve_name_call(self, ref: FuncRef, name: str,
                           aliases: Dict[str, str]) -> List[FuncRef]:
        # a sibling definition in the same module wins
        local = self.functions.get(f"{ref.module}:{name}")
        if local is not None:
            return [local]
        local_cls = self.classes.get(f"{ref.module}:{name}")
        dotted = aliases.get(name)
        if local_cls is None and dotted is not None:
            local_cls = self.class_by_dotted(dotted)
        if local_cls is not None:
            init = self.mro_method(local_cls, "__init__")
            return [init] if init else []
        if dotted is not None:
            target = self._project_function(dotted)
            if target is not None:
                return [target]
        return []

    def _project_function(self, dotted: str) -> Optional[FuncRef]:
        module, _, name = dotted.rpartition(".")
        if not module:
            return None
        return self.functions.get(f"{module}:{name}")

    def _cha(self, method: str) -> List[FuncRef]:
        """Unique-name class-hierarchy fallback: resolve only when
        exactly one project class defines the method name."""
        owners = self._method_owners.get(method, [])
        if len(owners) == 1:
            return [owners[0].methods[method]]
        return []

    def _receiver_classes(self, ref: FuncRef, cls: Optional[ClassRef],
                          receiver: ast.expr, aliases: Dict[str, str],
                          ) -> Optional[List[ClassRef]]:
        """Project classes a method receiver may be an instance of.

        ``None`` means "no idea" (caller may fall back to CHA); an
        empty list means "typed, but not a project class" (caller must
        NOT guess)."""
        if isinstance(receiver, ast.Name):
            flow = ref.flow
            value = flow.reaching(receiver.id, receiver.lineno)
            if value is not None:
                found = self._value_classes(value, ref, aliases)
                if found:
                    return found
                if isinstance(value, ast.Call):
                    return []  # constructed, but not a project class
                return None  # opaque expression — CHA may still guess
            ann = flow.param_annotation(receiver.id)
            if ann is not None:
                found = self._annotation_classes(ann, aliases)
                return found if found else []
            if flow.is_local(receiver.id):
                return []  # bound, but to something opaque
            return None
        if (
            isinstance(receiver, ast.Attribute)
            and isinstance(receiver.value, ast.Name)
            and receiver.value.id == "self"
            and cls is not None
        ):
            inits = cls.attr_inits.get(receiver.attr)
            if not inits:
                return []
            out: List[ClassRef] = []
            for init in inits:
                found = self._value_classes(init, ref, aliases)
                if found:
                    out.extend(found)
            return out
        return []

    def _value_classes(self, value: ast.expr, ref: FuncRef,
                       aliases: Dict[str, str]) -> List[ClassRef]:
        """Project classes the value of an expression instantiates."""
        if isinstance(value, ast.Call):
            dotted = resolve_call_target(value.func, aliases)
            if dotted is None:
                return []
            if dotted.split(".")[-1] == "get_backend":
                return self.registered_backends()
            direct = self.class_by_dotted(dotted)
            if direct is not None:
                return [direct] + self.subclasses(direct)
            factory = self._project_function(dotted)
            if factory is not None:
                returns = getattr(factory.node, "returns", None)
                if returns is not None:
                    return self._annotation_classes(
                        returns, self._aliases[factory.module]
                    )
            return []
        if isinstance(value, ast.Name):
            dotted = aliases.get(value.id, value.id)
            direct = self.class_by_dotted(dotted)
            if direct is not None:
                return [direct] + self.subclasses(direct)
        return []

    def _annotation_classes(self, ann: ast.expr,
                            aliases: Dict[str, str]) -> List[ClassRef]:
        """Project classes named by a parameter/return annotation."""
        if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
            try:
                ann = ast.parse(ann.value, mode="eval").body
            except SyntaxError:
                return []
        if isinstance(ann, ast.Subscript):
            # Optional[X] / "Optional[X]" — look through the wrapper
            return self._annotation_classes(ann.slice, aliases)
        dotted = resolve_call_target(ann, aliases)
        if dotted is None:
            return []
        direct = self.class_by_dotted(dotted)
        if direct is not None:
            return [direct] + self.subclasses(direct)
        return []

    # -- thread roots --------------------------------------------------
    def _detect_spawn(self, ref: FuncRef, call: ast.Call,
                      aliases: Dict[str, str], out: Set[str]) -> None:
        dotted = resolve_call_target(call.func, aliases)
        if dotted in _THREAD_TYPES:
            target = None
            for kw in call.keywords:
                if kw.arg == "target":
                    target = self._spawn_target(ref, kw.value, aliases)
            self.spawns.append(
                SpawnSite("thread", ref.module, call.lineno, target)
            )
            if target:
                out.add(target)
            return
        func = call.func
        if isinstance(func, ast.Attribute) and func.attr == "submit":
            cls = self.classes.get(ref.cls) if ref.cls else None
            pool_type = self._executor_type(ref, cls, func.value, aliases)
            if pool_type in _PROCESS_POOL_TYPES:
                return  # separate address spaces — not a thread root
            if pool_type in _THREAD_POOL_TYPES and call.args:
                target = self._spawn_target(ref, call.args[0], aliases)
                self.spawns.append(
                    SpawnSite("pool", ref.module, call.lineno, target)
                )
                if target:
                    out.add(target)

    def _executor_type(self, ref: FuncRef, cls: Optional[ClassRef],
                       receiver: ast.expr,
                       aliases: Dict[str, str]) -> Optional[str]:
        """The dotted constructor type of an executor receiver."""
        value: Optional[ast.expr] = None
        if isinstance(receiver, ast.Name):
            value = ref.flow.reaching(receiver.id, receiver.lineno)
        elif (
            isinstance(receiver, ast.Attribute)
            and isinstance(receiver.value, ast.Name)
            and receiver.value.id == "self"
            and cls is not None
        ):
            inits = cls.attr_inits.get(receiver.attr) or []
            value = inits[0] if inits else None
        if isinstance(value, ast.Call):
            return resolve_call_target(value.func, aliases)
        return None

    def _spawn_target(self, ref: FuncRef, expr: ast.expr,
                      aliases: Dict[str, str]) -> Optional[str]:
        """Qualified name of a spawn target expression, if resolvable."""
        if isinstance(expr, ast.Name):
            local = self.functions.get(f"{ref.module}:{expr.id}")
            if local is not None:
                return local.qual
            dotted = aliases.get(expr.id)
            if dotted is not None:
                target = self._project_function(dotted)
                if target is not None:
                    return target.qual
            return None
        if isinstance(expr, ast.Attribute):
            method = expr.attr
            cls = self.classes.get(ref.cls) if ref.cls else None
            if (
                isinstance(expr.value, ast.Name)
                and expr.value.id == "self"
                and cls is not None
            ):
                found = self.mro_method(cls, method)
                return found.qual if found else None
            receiver_classes = self._receiver_classes(
                ref, cls, expr.value, aliases
            )
            if receiver_classes:
                found = self.mro_method(receiver_classes[0], method)
                return found.qual if found else None
        return None

    def thread_roots(self) -> List[ThreadRoot]:
        """Every source of concurrent execution, ambient root first."""
        ambient = {
            qual for qual, ref in self.functions.items()
            if not ref.name.startswith("_")
            or (ref.name.startswith("__") and ref.name.endswith("__"))
        }
        roots = [ThreadRoot("the main thread", ambient, many=False)]
        seen: Set[Tuple[str, str]] = set()
        for spawn in self.spawns:
            if spawn.target is None:
                continue
            key = (spawn.kind, spawn.target)
            if key in seen:
                continue
            seen.add(key)
            noun = "worker pool" if spawn.kind == "pool" else "a thread"
            roots.append(ThreadRoot(
                f"{noun} via {spawn.target}", {spawn.target},
                many=spawn.kind == "pool",
            ))
        for qual in self._find_handler_methods():
            roots.append(ThreadRoot(
                f"request-handler threads via {qual}", {qual}, many=True,
            ))
        return roots

    def _find_handler_methods(self) -> List[str]:
        if not self.handler_methods:
            for qual in sorted(self.classes):
                cls = self.classes[qual]
                if not self.inherits_from(cls, _HANDLER_BASES):
                    continue
                for name, method in sorted(cls.methods.items()):
                    if name.startswith("do_"):
                        self.handler_methods.append(method.qual)
        return self.handler_methods

    def reachable(self, entries: Set[str]) -> Set[str]:
        """Qualified names reachable from ``entries`` over the edges."""
        key = frozenset(entries)
        cached = self._reach_cache.get(key)
        if cached is not None:
            return cached
        seen: Set[str] = set()
        todo = [q for q in entries if q in self.functions]
        while todo:
            cur = todo.pop()
            if cur in seen:
                continue
            seen.add(cur)
            todo.extend(self.edges.get(cur, ()))
        self._reach_cache[key] = seen
        return seen
