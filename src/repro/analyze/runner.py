"""Battery runner: parse the project once, run rules, apply noqa.

:func:`run_battery` is the analyzer's one entry point — the CLI, the
CI job, and the self-check test all go through it. It resolves the
rule selection first (an unknown rule id fails fast, before any
parsing), consults the incremental cache, parses the checkout into a
:class:`~repro.analyze.project.ProjectIndex` (reusing cached ASTs for
unchanged modules), runs the selected rules, scans suppression
comments, splits findings into reported vs suppressed, and finally
subtracts the baseline. Exit-code semantics live here too: ``1`` when
any unsuppressed, non-baselined error-severity finding remains.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence, Set, Union

from repro.analyze.baseline import Fingerprint, split_baselined
from repro.analyze.cache import CacheStats, LintCache, battery_key
from repro.analyze.findings import Finding, RuleInfo, Severity
from repro.analyze.project import ProjectIndex
from repro.analyze.registry import all_rules, get_rule
from repro.analyze.suppress import SUPPRESSION_RULE, scan_suppressions

__all__ = ["BatteryResult", "run_battery"]


class BatteryResult:
    """Outcome of one battery run over one checkout."""

    def __init__(self, findings: List[Finding],
                 suppressed: List[Finding],
                 rules: List[RuleInfo],
                 baselined: Optional[List[Finding]] = None,
                 cache: Optional[CacheStats] = None) -> None:
        #: Unsuppressed, non-baselined findings, sorted.
        self.findings = findings
        #: Findings silenced by well-formed noqa comments.
        self.suppressed = suppressed
        #: Metadata of every rule that ran (for the SARIF rules table).
        self.rules = rules
        #: Findings accepted by the baseline file (reported, non-fatal).
        self.baselined = baselined if baselined is not None else []
        #: What the incremental cache did for this run.
        self.cache = cache if cache is not None else CacheStats()

    @property
    def errors(self) -> List[Finding]:
        """The unsuppressed error-severity findings."""
        return [
            f for f in self.findings if f.severity == Severity.ERROR
        ]

    @property
    def ok(self) -> bool:
        """Whether the battery is clean (no unsuppressed errors)."""
        return not self.errors

    def exit_code(self) -> int:
        """Process exit code: 0 clean, 1 unsuppressed errors remain."""
        return 0 if self.ok else 1


def _analyzer_version() -> str:
    from repro import __version__

    return __version__


def run_battery(
    root: Union[str, Path],
    rules: Optional[Sequence[str]] = None,
    cache_dir: Optional[Union[str, Path]] = None,
    baseline: Optional[Set[Fingerprint]] = None,
) -> BatteryResult:
    """Run the invariant battery over the checkout at ``root``.

    ``rules`` selects a subset by id (default: every registered
    rule); unknown ids raise before anything is parsed, so usage
    errors fail fast. The suppression meta-rule (SUP001) always runs —
    malformed noqa comments are findings regardless of the selection.

    ``cache_dir`` enables the incremental cache: unchanged modules are
    not re-parsed, and a run whose full input digest matches the
    recorded one replays the previous findings without running any
    rule. ``baseline`` is a set of accepted finding fingerprints (see
    :mod:`repro.analyze.baseline`); matching findings land in
    ``result.baselined`` and do not affect the exit code.
    """
    # Resolve the selection FIRST: an unknown rule id must fail fast
    # (exit 2 at the CLI) before the project is even parsed.
    if rules is None:
        selected = all_rules()
    else:
        selected = [get_rule(rid) for rid in rules]
    infos = [r.info for r in selected] + [SUPPRESSION_RULE]
    selected_ids = [info.id for info in infos]

    cache = LintCache(cache_dir) if cache_dir is not None else None
    module_cache = cache.load_modules() if cache is not None else {}

    project = ProjectIndex(root, module_cache=module_cache or None)
    stats = CacheStats(
        enabled=cache is not None,
        modules_total=len(project.file_digests),
        modules_reused=project.modules_reused,
    )

    key = battery_key(
        project.file_digests, project.docs(), selected_ids,
        _analyzer_version(),
    )
    if cache is not None:
        recorded = cache.load_battery(key)
        if recorded is not None:
            stats.battery_hit = True
            stats.modules_reused = stats.modules_total
            reported, silenced = recorded
            return _finish(reported, silenced, infos, baseline, stats)

    raw: List[Finding] = []
    for registered in selected:
        raw.extend(registered.check(project))

    suppressions = scan_suppressions(
        project, [r.info.id for r in all_rules()]
    )
    raw.extend(suppressions.findings)

    reported = [f for f in raw if not suppressions.is_suppressed(f)]
    silenced = [f for f in raw if suppressions.is_suppressed(f)]
    reported.sort(key=Finding.sort_key)
    silenced.sort(key=Finding.sort_key)

    if cache is not None:
        cache.save_modules({
            module.rel_path: (
                project.file_digests[module.rel_path], module.tree
            )
            for module in project.modules.values()
        })
        cache.save_battery(key, reported, silenced)

    return _finish(reported, silenced, infos, baseline, stats)


def _finish(reported: List[Finding], silenced: List[Finding],
            infos: List[RuleInfo],
            baseline: Optional[Set[Fingerprint]],
            stats: CacheStats) -> BatteryResult:
    baselined: List[Finding] = []
    if baseline:
        reported, baselined = split_baselined(reported, baseline)
    return BatteryResult(
        reported, silenced, infos, baselined=baselined, cache=stats
    )
