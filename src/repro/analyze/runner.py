"""Battery runner: parse the project once, run rules, apply noqa.

:func:`run_battery` is the analyzer's one entry point — the CLI, the
CI job, and the self-check test all go through it. It parses the
checkout into a :class:`~repro.analyze.project.ProjectIndex`, runs
the selected rules, scans suppression comments, and splits findings
into reported vs suppressed. Exit-code semantics live here too:
``1`` when any unsuppressed error-severity finding remains.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence, Union

from repro.analyze.findings import Finding, RuleInfo, Severity
from repro.analyze.project import ProjectIndex
from repro.analyze.registry import all_rules, get_rule
from repro.analyze.suppress import SUPPRESSION_RULE, scan_suppressions

__all__ = ["BatteryResult", "run_battery"]


class BatteryResult:
    """Outcome of one battery run over one checkout."""

    def __init__(self, findings: List[Finding],
                 suppressed: List[Finding],
                 rules: List[RuleInfo]) -> None:
        #: Unsuppressed findings, sorted by (path, line, rule).
        self.findings = findings
        #: Findings silenced by well-formed noqa comments.
        self.suppressed = suppressed
        #: Metadata of every rule that ran (for the SARIF rules table).
        self.rules = rules

    @property
    def errors(self) -> List[Finding]:
        """The unsuppressed error-severity findings."""
        return [
            f for f in self.findings if f.severity == Severity.ERROR
        ]

    @property
    def ok(self) -> bool:
        """Whether the battery is clean (no unsuppressed errors)."""
        return not self.errors

    def exit_code(self) -> int:
        """Process exit code: 0 clean, 1 unsuppressed errors remain."""
        return 0 if self.ok else 1


def run_battery(
    root: Union[str, Path],
    rules: Optional[Sequence[str]] = None,
) -> BatteryResult:
    """Run the invariant battery over the checkout at ``root``.

    ``rules`` selects a subset by id (default: every registered
    rule). The suppression meta-rule (SUP001) always runs — malformed
    noqa comments are findings regardless of the selection, so a
    filtered run can never be silenced by a typo'd suppression.
    """
    project = ProjectIndex(root)
    if rules is None:
        selected = all_rules()
    else:
        selected = [get_rule(rid) for rid in rules]

    raw: List[Finding] = []
    for registered in selected:
        raw.extend(registered.check(project))

    suppressions = scan_suppressions(
        project, [r.info.id for r in all_rules()]
    )
    raw.extend(suppressions.findings)

    reported = [f for f in raw if not suppressions.is_suppressed(f)]
    silenced = [f for f in raw if suppressions.is_suppressed(f)]
    reported.sort(key=Finding.sort_key)
    silenced.sort(key=Finding.sort_key)

    infos = [r.info for r in selected] + [SUPPRESSION_RULE]
    return BatteryResult(reported, silenced, infos)
