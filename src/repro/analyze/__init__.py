"""Static-analysis subsystem: AST-based invariant checks for the repo.

The simulator's correctness rests on invariants no unit test sees
whole: counters must flow from increment site to manifest, every
route code must be accounted by the backend that emits it, every
backend must implement the full protocol surface, nothing inside the
simulation packages may read entropy, and the docs must match the
constants they quote. ``repro.analyze`` checks all of that statically
— ``repro lint`` on the CLI, :func:`run_battery` from code.

Findings can be suppressed inline with an explicit reason::

    foo = risky()  # repro: noqa[DET001] -- host-side jitter probe

See ``docs/static-analysis.md`` for the rule catalog.
"""

from repro.analyze.baseline import (
    BASELINE_SCHEMA,
    load_baseline,
    write_baseline,
)
from repro.analyze.cache import CacheStats, LintCache
from repro.analyze.callgraph import CallGraph
from repro.analyze.emit import (
    LINT_SCHEMA,
    SARIF_VERSION,
    dump_json,
    to_json,
    to_sarif,
    to_text,
)
from repro.analyze.findings import Finding, RuleInfo, Severity
from repro.analyze.project import AnalysisError, ProjectIndex, SourceModule
from repro.analyze.registry import all_rules, get_rule, rule, rule_ids
from repro.analyze.runner import BatteryResult, run_battery
from repro.analyze.suppress import SUPPRESSION_RULE, Suppressions

__all__ = [
    "BASELINE_SCHEMA",
    "LINT_SCHEMA",
    "SARIF_VERSION",
    "AnalysisError",
    "BatteryResult",
    "CacheStats",
    "CallGraph",
    "Finding",
    "LintCache",
    "ProjectIndex",
    "RuleInfo",
    "SUPPRESSION_RULE",
    "Severity",
    "SourceModule",
    "Suppressions",
    "all_rules",
    "dump_json",
    "get_rule",
    "load_baseline",
    "rule",
    "rule_ids",
    "run_battery",
    "to_json",
    "to_sarif",
    "to_text",
    "write_baseline",
]
