"""Content-hash-keyed incremental cache for the invariant battery.

Two layers, both keyed purely on content (never on mtimes, so the
cache is safe across checkouts and CI machines):

- **module cache** (``modules.pkl``) — per-file parsed ASTs keyed by
  a blake2b digest of the file's text. A warm run re-parses only the
  modules whose digest changed.
- **battery cache** (``battery.json``) — the full battery outcome
  (findings + suppressed) keyed over *every* input the rules consume:
  all source digests, all doc-page digests, the selected rule ids and
  the analyzer version. When the key matches, the rules are skipped
  entirely and the recorded findings are replayed — byte-identical by
  construction, since reports are rendered from the same Finding
  values through deterministic emitters.

Corrupt or stale cache files are never an error: they fall back to a
cold run and are rewritten.
"""

from __future__ import annotations

import ast
import hashlib
import json
import pickle
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analyze.findings import Finding

__all__ = ["CACHE_FORMAT", "CacheStats", "LintCache", "battery_key"]

#: Format tag of both cache files; bump to invalidate old caches.
CACHE_FORMAT = "omega-repro/lint-cache/v1"


class CacheStats:
    """What the cache did for one battery run (CLI/CI telemetry)."""

    def __init__(self, enabled: bool = False, battery_hit: bool = False,
                 modules_total: int = 0, modules_reused: int = 0) -> None:
        #: Whether a cache directory was in play at all.
        self.enabled = enabled
        #: Whether the whole battery outcome was replayed from cache.
        self.battery_hit = battery_hit
        self.modules_total = modules_total
        self.modules_reused = modules_reused

    def describe(self) -> str:
        """One log line: ``cold``/``warm``/``partial`` plus counts."""
        if not self.enabled:
            return "off"
        if self.battery_hit:
            return (
                f"warm (battery cache hit;"
                f" {self.modules_total} modules unchanged)"
            )
        if self.modules_reused:
            return (
                f"partial ({self.modules_reused}/{self.modules_total}"
                f" modules reused; rules re-ran)"
            )
        return f"cold (0/{self.modules_total} modules reused)"


def battery_key(file_digests: Mapping[str, str],
                doc_pages: Mapping[str, str],
                rule_ids: Sequence[str],
                version: str) -> str:
    """Digest over everything the battery's outcome depends on."""
    payload = {
        "format": CACHE_FORMAT,
        "version": version,
        "rules": sorted(set(rule_ids)),
        "files": sorted(file_digests.items()),
        "docs": sorted(
            (path, hashlib.blake2b(
                text.encode(), digest_size=16
            ).hexdigest())
            for path, text in doc_pages.items()
        ),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(blob.encode(), digest_size=16).hexdigest()


class LintCache:
    """Reader/writer for one ``.repro-lint-cache`` directory."""

    def __init__(self, cache_dir: "str | Path") -> None:
        self.dir = Path(cache_dir)
        self._modules_file = self.dir / "modules.pkl"
        self._battery_file = self.dir / "battery.json"

    # -- module layer --------------------------------------------------
    def load_modules(self) -> Dict[str, Tuple[str, ast.Module]]:
        """Cached parse results: rel path → (digest, tree)."""
        try:
            with self._modules_file.open("rb") as fh:
                blob = pickle.load(fh)
            if blob.get("format") != CACHE_FORMAT:
                return {}
            modules = blob.get("modules", {})
            return dict(modules) if isinstance(modules, dict) else {}
        except Exception:  # repro: noqa[EXC001] -- a corrupt/old pickle (any unpickling error) must fall back to a cold parse, never crash the lint
            return {}

    def save_modules(
        self, modules: Mapping[str, Tuple[str, ast.Module]]
    ) -> None:
        """Persist parse results for the next run (best effort)."""
        try:
            self.dir.mkdir(parents=True, exist_ok=True)
            with self._modules_file.open("wb") as fh:
                pickle.dump(
                    {"format": CACHE_FORMAT, "modules": dict(modules)},
                    fh, protocol=pickle.HIGHEST_PROTOCOL,
                )
        except OSError:
            pass  # read-only checkout: the cache is an optimization

    # -- battery layer -------------------------------------------------
    def load_battery(
        self, key: str
    ) -> Optional[Tuple[List[Finding], List[Finding]]]:
        """Recorded (findings, suppressed) when ``key`` matches."""
        try:
            doc = json.loads(self._battery_file.read_text())
        except (OSError, ValueError):
            return None
        if not isinstance(doc, dict) or doc.get("format") != CACHE_FORMAT:
            return None
        if doc.get("key") != key:
            return None
        try:
            findings = [Finding(**f) for f in doc["findings"]]
            suppressed = [Finding(**f) for f in doc["suppressed"]]
        except (KeyError, TypeError):
            return None
        return findings, suppressed

    def save_battery(self, key: str, findings: Sequence[Finding],
                     suppressed: Sequence[Finding]) -> None:
        """Record a battery outcome under ``key`` (best effort)."""
        doc = {
            "format": CACHE_FORMAT,
            "key": key,
            "findings": [f.__dict__ for f in findings],
            "suppressed": [f.__dict__ for f in suppressed],
        }
        try:
            self.dir.mkdir(parents=True, exist_ok=True)
            self._battery_file.write_text(
                json.dumps(doc, indent=2, sort_keys=True) + "\n"
            )
        except OSError:
            pass
