"""Baseline ratchet: accepted findings that don't fail the battery.

A baseline file lets a new rule land *strict on new code* even when a
finding is consciously accepted in-tree: ``repro lint --baseline
PATH`` subtracts the recorded findings from the exit-code computation
(they are still reported, separately, as "baselined"), and
``--update-baseline`` rewrites the file to the current findings.

Entries are fingerprinted by ``(rule, path, message)`` — deliberately
line-independent, so unrelated edits that shift a baselined finding a
few lines do not resurrect it, while any change to what the rule
actually reports (a new attribute name, a different dtype) does.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Sequence, Set, Tuple

from repro.analyze.findings import Finding
from repro.errors import ReproError

__all__ = [
    "BASELINE_SCHEMA",
    "fingerprint",
    "load_baseline",
    "split_baselined",
    "write_baseline",
]

#: Schema tag of the baseline file.
BASELINE_SCHEMA = "omega-repro/lint-baseline/v1"

#: A finding's identity in the baseline: (rule, path, message).
Fingerprint = Tuple[str, str, str]


def fingerprint(finding: Finding) -> Fingerprint:
    """Line-independent identity of a finding."""
    return (finding.rule, finding.path, finding.message)


def load_baseline(path: "str | Path") -> Set[Fingerprint]:
    """Parse a baseline file into a set of fingerprints.

    Raises :class:`ReproError` (a usage error — exit 2) on unreadable
    or malformed files: a typo'd baseline must never silently accept
    everything.
    """
    try:
        doc = json.loads(Path(path).read_text())
    except OSError as exc:
        raise ReproError(f"cannot read baseline {path}: {exc}") from exc
    except ValueError as exc:
        raise ReproError(
            f"baseline {path} is not valid JSON: {exc}"
        ) from exc
    if not isinstance(doc, dict) or doc.get("schema") != BASELINE_SCHEMA:
        raise ReproError(
            f"baseline {path} is not a {BASELINE_SCHEMA} document"
        )
    entries = doc.get("entries")
    if not isinstance(entries, list):
        raise ReproError(f"baseline {path} has no entries list")
    out: Set[Fingerprint] = set()
    for entry in entries:
        try:
            out.add((entry["rule"], entry["path"], entry["message"]))
        except (KeyError, TypeError):
            raise ReproError(
                f"baseline {path} entry missing rule/path/message:"
                f" {entry!r}"
            ) from None
    return out


def write_baseline(path: "str | Path",
                   findings: Iterable[Finding]) -> int:
    """Write the baseline for ``findings``; returns the entry count."""
    entries = sorted({fingerprint(f) for f in findings})
    doc = {
        "schema": BASELINE_SCHEMA,
        "entries": [
            {"rule": rule, "path": rel, "message": message}
            for rule, rel, message in entries
        ],
    }
    Path(path).write_text(
        json.dumps(doc, indent=2, sort_keys=True) + "\n"
    )
    return len(entries)


def split_baselined(
    findings: Sequence[Finding], baseline: Set[Fingerprint]
) -> "Tuple[List[Finding], List[Finding]]":
    """Split findings into (new, baselined) against a fingerprint set."""
    new: List[Finding] = []
    accepted: List[Finding] = []
    for finding in findings:
        if fingerprint(finding) in baseline:
            accepted.append(finding)
        else:
            new.append(finding)
    return new, accepted
