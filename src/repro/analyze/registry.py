"""Rule registry: id → (metadata, check function).

Rules register with the :func:`rule` decorator; the battery runner
iterates :func:`all_rules`. A rule is a plain function taking the
parsed :class:`~repro.analyze.project.ProjectIndex` and yielding
:class:`~repro.analyze.findings.Finding` objects — stateless, so the
registry can run any subset in any order.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List

from repro.analyze.findings import Finding, RuleInfo, Severity
from repro.analyze.project import ProjectIndex
from repro.errors import ReproError

__all__ = ["RegisteredRule", "rule", "all_rules", "get_rule", "rule_ids"]

CheckFn = Callable[[ProjectIndex], Iterable[Finding]]


class RegisteredRule:
    """A rule's metadata plus its check function."""

    def __init__(self, info: RuleInfo, check: CheckFn) -> None:
        self.info = info
        self._check = check

    def check(self, project: ProjectIndex) -> List[Finding]:
        """Run the rule over ``project``; returns its findings."""
        return list(self._check(project))


#: Registry of rule id → :class:`RegisteredRule`.
_RULES: Dict[str, RegisteredRule] = {}


def rule(
    id: str,
    name: str,
    description: str,
    severity: str = Severity.ERROR,
) -> Callable[[CheckFn], CheckFn]:
    """Decorator: register ``fn`` as the check for rule ``id``.

    The decorated function gains an ``info`` attribute so rules can
    mint findings with their own identity
    (``check_foo.info.finding(path, line, msg)``).
    """
    if severity not in Severity.ALL:
        raise ReproError(f"unknown severity {severity!r} for rule {id}")

    def deco(fn: CheckFn) -> CheckFn:
        if id in _RULES:
            raise ReproError(f"duplicate rule id {id!r}")
        info = RuleInfo(
            id=id, name=name, severity=severity, description=description
        )
        _RULES[id] = RegisteredRule(info, fn)
        fn.info = info  # type: ignore[attr-defined]
        return fn

    return deco


def _load_builtin_rules() -> None:
    """Import the built-in rule modules (registration side effect)."""
    from repro.analyze import rules  # noqa: F401 (imported for effect)


def all_rules() -> List[RegisteredRule]:
    """Every registered rule, sorted by id."""
    _load_builtin_rules()
    return [_RULES[rid] for rid in sorted(_RULES)]


def rule_ids() -> List[str]:
    """All registered rule ids, sorted."""
    _load_builtin_rules()
    return sorted(_RULES)


def get_rule(rule_id: str) -> RegisteredRule:
    """Look up one rule by id."""
    _load_builtin_rules()
    try:
        return _RULES[rule_id]
    except KeyError:
        raise ReproError(
            f"unknown rule {rule_id!r}; known: {', '.join(sorted(_RULES))}"
        ) from None
