"""Parsed view of the repository the rules analyze.

:class:`ProjectIndex` walks a checkout root, parses every module under
``src/repro`` into an AST exactly once, and exposes lookup helpers the
rules share: module-by-dotted-name, prefix iteration, and the doc
pages (``README.md`` + ``docs/*.md``) the doc-sync rule cross-checks.

Everything is pure reading — the analyzer never imports the code it
checks, so a syntactically valid tree with a broken import graph still
lints.
"""

from __future__ import annotations

import ast
import hashlib
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Iterator, Mapping, Optional, Tuple

from repro.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analyze.callgraph import CallGraph

__all__ = ["SourceModule", "ProjectIndex", "AnalysisError", "source_digest"]


def source_digest(source: str) -> str:
    """Content hash of one source file (the incremental-cache key)."""
    return hashlib.blake2b(source.encode(), digest_size=16).hexdigest()


class AnalysisError(ReproError):
    """The analyzer could not read the project (bad root, parse error)."""


class SourceModule:
    """One parsed source file: dotted name, path, text, AST."""

    def __init__(self, name: str, path: Path, rel_path: str,
                 source: str, tree: Optional[ast.Module] = None) -> None:
        #: Dotted module name (``repro.memsim.routes``).
        self.name = name
        #: Absolute path on disk.
        self.path = path
        #: Repo-relative posix path (what findings report).
        self.rel_path = rel_path
        #: Full source text.
        self.source = source
        #: Source split into lines (1-based access via ``line()``).
        self.lines = source.splitlines()
        if tree is not None:
            # An incremental-cache hit hands the parsed tree in —
            # content-hash keyed, so it matches ``source`` exactly.
            self.tree: ast.Module = tree
            return
        try:
            #: Parsed abstract syntax tree.
            self.tree = ast.parse(source, filename=rel_path)
        except SyntaxError as exc:
            raise AnalysisError(
                f"cannot parse {rel_path}: {exc}"
            ) from exc

    def line(self, lineno: int) -> str:
        """Source text of 1-based line ``lineno`` ('' out of range)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""


def _module_name(rel: Path) -> str:
    """Dotted module name of a path relative to the ``src`` root."""
    parts = list(rel.with_suffix("").parts)
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


class ProjectIndex:
    """All parsed modules and doc pages of one checkout."""

    def __init__(self, root: "str | Path",
                 module_cache: Optional[
                     Mapping[str, Tuple[str, ast.Module]]
                 ] = None) -> None:
        self.root = Path(root).resolve()
        src = self.root / "src"
        package_root = src / "repro"
        if not package_root.is_dir():
            raise AnalysisError(
                f"no src/repro package under {self.root}; pass the"
                " checkout root (repro lint --root PATH)"
            )
        #: Dotted module name → :class:`SourceModule`.
        self.modules: Dict[str, SourceModule] = {}
        #: Repo-relative path → content digest (cache key material).
        self.file_digests: Dict[str, str] = {}
        #: How many modules were adopted from ``module_cache`` instead
        #: of re-parsed (incremental-cache telemetry).
        self.modules_reused = 0
        for path in sorted(package_root.rglob("*.py")):
            if "__pycache__" in path.parts:
                continue
            rel_src = path.relative_to(src)
            name = _module_name(rel_src)
            rel = path.relative_to(self.root).as_posix()
            source = path.read_text()
            digest = source_digest(source)
            self.file_digests[rel] = digest
            tree: Optional[ast.Module] = None
            if module_cache is not None:
                cached = module_cache.get(rel)
                if cached is not None and cached[0] == digest:
                    tree = cached[1]
                    self.modules_reused += 1
            self.modules[name] = SourceModule(
                name, path, rel, source, tree=tree
            )
        self._docs: Optional[Dict[str, str]] = None
        self._call_graph: Optional["CallGraph"] = None

    # -- module lookup -------------------------------------------------
    def get(self, name: str) -> Optional[SourceModule]:
        """Module by dotted name, or ``None`` when absent."""
        return self.modules.get(name)

    def iter_modules(self, *prefixes: str) -> Iterator[SourceModule]:
        """Modules whose dotted name matches any prefix (all, if none).

        A prefix matches the package itself and everything below it
        (``repro.memsim`` matches ``repro.memsim`` and
        ``repro.memsim.routes``).
        """
        for name in sorted(self.modules):
            if not prefixes or any(
                name == p or name.startswith(p + ".") for p in prefixes
            ):
                yield self.modules[name]

    # -- docs ----------------------------------------------------------
    def docs(self) -> Dict[str, str]:
        """Doc pages (repo-relative posix path → text).

        Covers ``README.md`` and every ``docs/*.md`` that exists;
        empty when the checkout ships no docs (e.g. a bare package).
        """
        if self._docs is None:
            pages: Dict[str, str] = {}
            readme = self.root / "README.md"
            if readme.is_file():
                pages["README.md"] = readme.read_text()
            docs_dir = self.root / "docs"
            if docs_dir.is_dir():
                for page in sorted(docs_dir.glob("*.md")):
                    rel = page.relative_to(self.root).as_posix()
                    pages[rel] = page.read_text()
            self._docs = pages
        return self._docs

    def doc_text(self, rel_path: str) -> Optional[str]:
        """Text of one doc page by repo-relative path, or ``None``."""
        return self.docs().get(rel_path)

    # -- whole-program views -------------------------------------------
    def call_graph(self) -> "CallGraph":
        """The project-wide call graph (built once, shared by rules)."""
        if self._call_graph is None:
            from repro.analyze.callgraph import CallGraph

            self._call_graph = CallGraph(self)
        return self._call_graph
