"""``# repro: noqa[RULE]`` suppression comments.

A finding is suppressed by a trailing comment on the flagged line::

    t = time.time()  # repro: noqa[DET001] -- wall-clock for the log banner

The rule list is mandatory (bare ``noqa`` is not honoured — every
suppression names what it silences) and so is the reason after
``--``: a suppression without one is itself a finding (``SUP001``),
as is one naming an unknown rule id. This keeps the battery's
zero-findings guarantee honest — nothing disappears without a
reviewable justification in the diff.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, Iterable, List, Set, Tuple

from repro.analyze.findings import Finding, RuleInfo, Severity
from repro.analyze.project import ProjectIndex

__all__ = ["SUPPRESSION_RULE", "Suppressions", "scan_suppressions"]

#: The meta-rule malformed suppressions are reported under.
SUPPRESSION_RULE = RuleInfo(
    id="SUP001",
    name="suppression-hygiene",
    severity=Severity.ERROR,
    description=(
        "repro: noqa comments must name known rule ids and carry a"
        " reason after '--'"
    ),
)

#: Anything that looks like an attempted repro suppression.
_ATTEMPT = re.compile(r"#\s*repro:\s*noqa\b(?P<rest>[^#]*)")

#: The well-formed shape: rule list in brackets, ' -- reason' after.
_WELL_FORMED = re.compile(
    r"#\s*repro:\s*noqa\[(?P<rules>[A-Za-z0-9_,\s]+)\]"
    r"\s*--\s*(?P<reason>\S.*)$"
)


class Suppressions:
    """Parsed suppression table for one project.

    ``is_suppressed(finding)`` answers whether a finding's
    (path, line) carries a well-formed noqa naming its rule;
    ``findings`` holds the SUP001 violations the scan itself produced
    (missing reason, unknown rule id, malformed syntax).
    """

    def __init__(self) -> None:
        self._table: Dict[Tuple[str, int], Set[str]] = {}
        #: Malformed-suppression findings discovered while scanning.
        self.findings: List[Finding] = []

    def add(self, path: str, line: int, rules: Iterable[str]) -> None:
        """Record a well-formed suppression of ``rules`` at a line."""
        self._table.setdefault((path, line), set()).update(rules)

    def is_suppressed(self, finding: Finding) -> bool:
        """Whether ``finding`` is silenced by a suppression comment."""
        if finding.rule == SUPPRESSION_RULE.id:
            return False  # the meta-rule cannot silence itself
        rules = self._table.get((finding.path, finding.line))
        return rules is not None and finding.rule in rules


def scan_suppressions(project: ProjectIndex,
                      known_rules: Iterable[str]) -> Suppressions:
    """Collect every ``# repro: noqa`` comment in the project.

    Well-formed comments land in the suppression table; malformed
    ones (no bracketed rule list, no ``-- reason``, unknown rule id)
    produce SUP001 findings instead, so they can never silently
    swallow a violation.
    """
    known = set(known_rules)
    known.add(SUPPRESSION_RULE.id)
    sup = Suppressions()
    for module in project.iter_modules():
        # Tokenize so only genuine comments count — the same syntax
        # quoted inside a docstring or error message is not an
        # attempted suppression.
        try:
            tokens = tokenize.generate_tokens(
                io.StringIO(module.source).readline
            )
            comments = [
                (tok.start[0], tok.string)
                for tok in tokens
                if tok.type == tokenize.COMMENT
            ]
        except (tokenize.TokenError, IndentationError):
            continue
        for lineno, text in comments:
            attempt = _ATTEMPT.search(text)
            if attempt is None:
                continue
            match = _WELL_FORMED.search(text)
            if match is None:
                sup.findings.append(SUPPRESSION_RULE.finding(
                    module.rel_path, lineno,
                    "malformed suppression: expected"
                    " '# repro: noqa[RULE001] -- reason'",
                ))
                continue
            rules = [
                r.strip() for r in match.group("rules").split(",")
                if r.strip()
            ]
            unknown = sorted(set(rules) - known)
            if not rules or unknown:
                sup.findings.append(SUPPRESSION_RULE.finding(
                    module.rel_path, lineno,
                    "suppression names unknown rule id(s): "
                    + (", ".join(unknown) if unknown else "(none given)"),
                ))
                continue
            sup.add(module.rel_path, lineno, rules)
    return sup
