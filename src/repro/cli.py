"""Command-line interface: run OMEGA experiments without writing code.

Usage::

    python -m repro datasets
    python -m repro run --dataset lj --algorithm pagerank --system omega
    python -m repro compare --dataset lj --algorithm pagerank
    python -m repro sweep --algorithms pagerank,bfs --datasets sd,lj

All numbers come from the same drivers the benchmark harness uses.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.config import SimConfig
from repro.errors import ReproError

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="OMEGA heterogeneous-memory-subsystem reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list the Table I dataset stand-ins")

    validate = sub.add_parser(
        "validate", help="run the reproduction's acceptance self-check"
    )
    validate.add_argument("--scale", type=float, default=0.5,
                          help="dataset scale for the check")

    run = sub.add_parser("run", help="simulate one system on one workload")
    _workload_args(run)
    run.add_argument(
        "--system",
        choices=("baseline", "omega", "locked", "graphpim"),
        default="omega",
        help="memory-subsystem design to simulate",
    )
    run.add_argument(
        "--backend",
        choices=("baseline", "omega", "locked", "graphpim", "dynamic"),
        default=None,
        help="replay-engine backend (overrides --system; adds the"
             " dynamic-scratchpad variant)",
    )
    run.add_argument(
        "--manifest",
        metavar="PATH",
        default=None,
        help="write the per-run JSON manifest to PATH",
    )

    cmp = sub.add_parser("compare", help="baseline vs OMEGA on one workload")
    _workload_args(cmp)

    sweep = sub.add_parser("sweep", help="speedups across workloads (Fig 14 style)")
    sweep.add_argument("--algorithms", default="pagerank",
                       help="comma-separated algorithm names")
    sweep.add_argument("--datasets", default="lj",
                       help="comma-separated dataset names")
    sweep.add_argument("--scale", type=float, default=1.0,
                       help="dataset scale multiplier")
    return parser


def _workload_args(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--dataset", required=True, help="Table I abbreviation")
    sub.add_argument("--algorithm", default="pagerank",
                     help="registered algorithm name")
    sub.add_argument("--scale", type=float, default=1.0,
                     help="dataset scale multiplier")
    sub.add_argument("--cores", type=int, default=16,
                     help="number of simulated cores")


def _load(dataset: str, algorithm: str, scale: float):
    from repro.algorithms.registry import ALGORITHMS
    from repro.graph.datasets import load_dataset

    info = ALGORITHMS.get(algorithm)
    if info is None:
        raise ReproError(
            f"unknown algorithm {algorithm!r};"
            f" available: {', '.join(ALGORITHMS)}"
        )
    graph, spec = load_dataset(
        dataset, scale=scale, weighted=info.requires_weights
    )
    if info.requires_undirected and graph.directed:
        graph = graph.as_undirected()
    return graph, spec


def _cmd_datasets() -> int:
    from repro.bench.tables import format_table
    from repro.graph.datasets import DATASETS, dataset_names

    rows = []
    for name in dataset_names():
        spec = DATASETS[name]
        rows.append(
            {
                "name": name,
                "kind": spec.kind,
                "vertices": spec.base_vertices,
                "directed": "yes" if spec.directed else "no",
                "power law": "yes" if spec.power_law else "no",
                "paper |V| (M)": spec.paper_vertices_m,
                "description": spec.description,
            }
        )
    print(format_table(rows, "Table I dataset stand-ins"), end="")
    return 0


def _cmd_validate(args) -> int:
    from repro.validate import format_validation, run_validation

    results = run_validation(scale=args.scale,
                             progress=lambda msg: print(f"... {msg}"))
    print(format_validation(results), end="")
    return 0 if all(c.passed for c in results) else 1


def _cmd_run(args) -> int:
    from repro.core.system import run_system

    graph, spec = _load(args.dataset, args.algorithm, args.scale)
    backend = args.backend or args.system
    if backend in ("baseline", "graphpim"):
        config = SimConfig.scaled_baseline(num_cores=args.cores)
    elif backend == "locked":
        config = SimConfig.scaled_omega(
            num_cores=args.cores, use_pisc=False, use_source_buffer=False
        )
    else:  # omega, dynamic
        config = SimConfig.scaled_omega(num_cores=args.cores)
    report = run_system(
        graph, args.algorithm, config,
        dataset=spec.name, backend=backend, manifest_path=args.manifest,
    )

    for key, value in report.summary().items():
        print(f"{key}: {value}")
    return 0


def _cmd_compare(args) -> int:
    from repro.core.system import compare_systems

    graph, spec = _load(args.dataset, args.algorithm, args.scale)
    cmp = compare_systems(
        graph, args.algorithm,
        baseline_config=SimConfig.scaled_baseline(num_cores=args.cores),
        omega_config=SimConfig.scaled_omega(num_cores=args.cores),
        dataset=spec.name,
    )
    for key, value in cmp.summary().items():
        print(f"{key}: {value}")
    return 0


def _cmd_sweep(args) -> int:
    from repro.bench.tables import format_table
    from repro.core.system import compare_systems

    rows = []
    for algorithm in args.algorithms.split(","):
        algorithm = algorithm.strip()
        for dataset in args.datasets.split(","):
            dataset = dataset.strip()
            graph, spec = _load(dataset, algorithm, args.scale)
            cmp = compare_systems(graph, algorithm, dataset=spec.name)
            rows.append(
                {
                    "algorithm": algorithm,
                    "dataset": dataset,
                    "speedup": round(cmp.speedup, 2),
                    "traffic x": round(cmp.traffic_reduction, 2),
                    "energy x": round(cmp.energy_saving, 2),
                }
            )
    print(format_table(rows, "OMEGA vs baseline sweep"), end="")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        if args.command == "datasets":
            return _cmd_datasets()
        if args.command == "validate":
            return _cmd_validate(args)
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "compare":
            return _cmd_compare(args)
        if args.command == "sweep":
            return _cmd_sweep(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 1  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
