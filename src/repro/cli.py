"""Command-line interface: run OMEGA experiments without writing code.

Usage::

    python -m repro datasets
    python -m repro run --dataset lj --algorithm pagerank --system omega
    python -m repro run --dataset lj --trace-out trace.json \
        --metrics-out timeline.json --manifest run.json
    python -m repro run --dataset lj --attribution --manifest run.json
    python -m repro explain run.json --sort dram
    python -m repro history --ledger runs.jsonl --last 5
    python -m repro compare --dataset lj --algorithm pagerank
    python -m repro sweep --algorithms pagerank,bfs --datasets sd,lj \
        --backends baseline,omega --workers 4 --json-out sweep.json
    python -m repro report old-manifest.json new-manifest.json
    python -m repro lint --format sarif --out lint.sarif

All numbers come from the same drivers the benchmark harness uses.
``run``, ``compare`` and ``sweep`` consult the persistent trace store
when ``--cache-dir`` (or ``REPRO_CACHE_DIR``) names one; ``--no-cache``
bypasses it.

Exit codes: 0 success, 1 check/regression failure (``validate``,
``report``, ``lint``), 2 usage error (unknown dataset/algorithm/
backend, bad manifest), each reported as a one-line ``error:`` message
on stderr.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro import __version__
from repro.config import SimConfig
from repro.errors import ReproError
from repro.obs import LOG_LEVELS, configure_logging

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="OMEGA heterogeneous-memory-subsystem reproduction",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    parser.add_argument(
        "--log-level",
        choices=LOG_LEVELS,
        default="warning",
        help="logging verbosity for the repro.* loggers",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list the Table I dataset stand-ins")

    validate = sub.add_parser(
        "validate", help="run the reproduction's acceptance self-check"
    )
    validate.add_argument("--scale", type=float, default=0.5,
                          help="dataset scale for the check")

    run = sub.add_parser("run", help="simulate one system on one workload")
    _workload_args(run)
    run.add_argument(
        "--system",
        choices=("baseline", "omega", "locked", "graphpim"),
        default="omega",
        help="memory-subsystem design to simulate",
    )
    run.add_argument(
        "--backend",
        choices=("baseline", "omega", "locked", "graphpim", "dynamic"),
        default=None,
        help="replay-engine backend (overrides --system; adds the"
             " dynamic-scratchpad variant)",
    )
    run.add_argument(
        "--manifest",
        metavar="PATH",
        default=None,
        help="write the per-run JSON manifest to PATH",
    )
    run.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="write a Chrome trace-event JSON of the run's phases to"
             " PATH (open in Perfetto or chrome://tracing)",
    )
    run.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="write the windowed replay timeline to PATH"
             " (columnar JSON, or CSV when PATH ends in .csv)",
    )
    run.add_argument(
        "--obs-window",
        metavar="N",
        type=int,
        default=None,
        help="sample replay counters every N trace events"
             " (default: auto-size to ~64 windows when --metrics-out"
             " is given)",
    )
    run.add_argument(
        "--segment-events",
        metavar="N",
        type=int,
        default=None,
        help="stream the run out-of-core in N-event segments (bounded"
             " resident memory, bit-identical counters; default: the"
             " REPRO_SEGMENT_EVENTS environment variable, else"
             " whole-trace in-core)",
    )
    run.add_argument(
        "--attribution",
        action="store_true",
        help="fold per-class traffic attribution (graph entity x degree"
             " stratum) during the replay; the breakdown lands in the"
             " manifest and is queryable with 'repro explain' (default:"
             " the REPRO_ATTRIBUTION environment variable)",
    )
    run.add_argument(
        "--attribution-out",
        metavar="PATH",
        default=None,
        help="write the attribution breakdown as standalone JSON to"
             " PATH (implies --attribution)",
    )
    run.add_argument(
        "--ledger",
        metavar="PATH",
        default=None,
        help="append one run-ledger entry (JSONL) to PATH after the run"
             " (default: the REPRO_LEDGER environment variable, else"
             " off); inspect with 'repro history'",
    )

    _cache_args(run)

    cmp = sub.add_parser("compare", help="baseline vs OMEGA on one workload")
    _workload_args(cmp)
    _cache_args(cmp)

    sweep = sub.add_parser(
        "sweep",
        help="run a (datasets x algorithms x backends) grid, optionally"
             " across worker processes (Fig 14 style)",
    )
    sweep.add_argument("--algorithms", default="pagerank",
                       help="comma-separated algorithm names")
    sweep.add_argument("--datasets", default="lj",
                       help="comma-separated dataset names")
    sweep.add_argument(
        "--backends", default="baseline,omega",
        help="comma-separated hierarchy backends (baseline, omega,"
             " locked, graphpim, dynamic)",
    )
    sweep.add_argument("--scale", type=float, default=1.0,
                       help="dataset scale multiplier")
    sweep.add_argument("--cores", type=int, default=16,
                       help="number of simulated cores")
    sweep.add_argument(
        "--workers", type=int, default=1,
        help="worker processes (1 = run inline); workers share the"
             " trace store, so generation work is deduplicated",
    )
    sweep.add_argument(
        "--estimate-prune", metavar="SPEC", default=None,
        help="skip cells whose analytically predicted metrics fall"
             " outside this interest band before replaying them;"
             " SPEC is a comma-separated conjunction of clauses like"
             " 'l2_hit_rate<0.5,dram_bytes>1e6' (metrics are the"
             " ReplayEstimate.as_dict keys). Pruned cells stay in the"
             " output with the violated clause and their predictions",
    )
    sweep.add_argument("--json-out", metavar="PATH", default=None,
                       help="write the sweep rows as JSON to PATH")
    sweep.add_argument("--csv-out", metavar="PATH", default=None,
                       help="write the sweep rows as CSV to PATH")
    _cache_args(sweep)

    explain = sub.add_parser(
        "explain",
        help="render a run's attribution breakdown (where the memory"
             " traffic goes, by graph entity and degree class)",
    )
    explain.add_argument(
        "manifest",
        help="run-manifest JSON with an attribution block (a run made"
             " with --attribution), or a standalone attribution JSON",
    )
    explain.add_argument(
        "--top", type=int, default=0, metavar="N",
        help="show only the top N classes (default: all)",
    )
    explain.add_argument(
        "--sort", choices=("dram", "events", "capture"), default="dram",
        help="table sort key: DRAM bytes, event count, or scratchpad"
             " capture rate (default dram)",
    )

    history = sub.add_parser(
        "history",
        help="list, filter, and regression-diff run-ledger entries",
    )
    history.add_argument(
        "--ledger", metavar="PATH", default=None,
        help="ledger JSONL file (default: the REPRO_LEDGER environment"
             " variable)",
    )
    history.add_argument(
        "--last", type=int, default=0, metavar="N",
        help="show only the most recent N matching entries",
    )
    history.add_argument("--kind", choices=("run", "bench"), default=None,
                         help="only entries of this kind")
    history.add_argument("--dataset", default=None,
                         help="only entries for this dataset")
    history.add_argument("--algorithm", default=None,
                         help="only entries for this algorithm")
    history.add_argument("--backend", default=None,
                         help="only entries for this backend")
    history.add_argument(
        "--diff", metavar="GOLDEN", default=None,
        help="diff the newest matching entry's manifest against the"
             " GOLDEN manifest JSON; exit 1 if a tracked metric"
             " regressed beyond tolerance",
    )
    history.add_argument(
        "--tolerance", type=float, default=0.05,
        help="allowed relative regression per metric for --diff"
             " (default 0.05)",
    )

    report = sub.add_parser(
        "report",
        help="diff two run manifests; exit 1 if a tracked metric"
             " regressed beyond tolerance",
    )
    report.add_argument("old", help="baseline manifest JSON path")
    report.add_argument("new", help="candidate manifest JSON path")
    report.add_argument(
        "--tolerance", type=float, default=0.05,
        help="allowed relative regression per metric (default 0.05)",
    )

    lint = sub.add_parser(
        "lint",
        help="run the static invariant battery over the source tree;"
             " exit 1 on unsuppressed findings",
    )
    lint.add_argument(
        "--root", metavar="DIR", default=None,
        help="checkout root holding src/repro (default: the root of"
             " the installed package's own checkout)",
    )
    lint.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (default text; json is the stable"
             " omega-repro/lint/v2 document, sarif is SARIF 2.1.0)",
    )
    lint.add_argument(
        "--out", metavar="PATH", default=None,
        help="write the report to PATH instead of stdout",
    )
    lint.add_argument(
        "--rules", metavar="IDS", default=None,
        help="comma-separated rule ids to run (default: all;"
             " suppression hygiene always runs)",
    )
    lint.add_argument(
        "--baseline", metavar="PATH", default=None,
        help="accepted-findings file: matching findings are reported"
             " as baselined and do not fail the battery",
    )
    lint.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite --baseline (required) to the current findings"
             " and exit 0",
    )
    lint.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="incremental-cache directory (default:"
             " ROOT/.repro-lint-cache); warm runs re-parse only"
             " changed modules and replay unchanged batteries",
    )
    lint.add_argument(
        "--no-cache", action="store_true",
        help="disable the incremental cache for this run",
    )

    serve = sub.add_parser(
        "serve",
        help="run the replay-as-a-service HTTP/JSON job server"
             " (see docs/serving.md)",
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8357,
                       help="bind port; 0 picks an ephemeral port"
                            " (default 8357)")
    serve.add_argument("--workers", type=int, default=2,
                       help="concurrent replay worker threads (default 2)")
    serve.add_argument("--queue-depth", type=int, default=8,
                       help="max live (queued+running) jobs before"
                            " requests get 429 (default 8)")
    serve.add_argument("--ledger", metavar="PATH", default=None,
                       help="append one run-ledger entry per computed job"
                            " (default: $REPRO_LEDGER when set)")
    _cache_args(serve)
    return parser


def _workload_args(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--dataset", required=True, help="Table I abbreviation")
    sub.add_argument("--algorithm", default="pagerank",
                     help="registered algorithm name")
    sub.add_argument("--scale", type=float, default=1.0,
                     help="dataset scale multiplier")
    sub.add_argument("--cores", type=int, default=16,
                     help="number of simulated cores")


def _cache_args(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="persistent trace-store directory (default: $REPRO_CACHE_DIR"
             " when set, else caching is off)",
    )
    sub.add_argument(
        "--no-cache", action="store_true",
        help="bypass the trace store even when REPRO_CACHE_DIR is set",
    )


def _resolve_cache(args):
    """Map --cache-dir/--no-cache onto run_system's ``cache`` argument."""
    if args.no_cache:
        return False
    return args.cache_dir  # None -> ambient (REPRO_CACHE_DIR), path -> store


def _load(dataset: str, algorithm: str, scale: float):
    from repro.algorithms.registry import ALGORITHMS
    from repro.graph.datasets import load_dataset

    info = ALGORITHMS.get(algorithm)
    if info is None:
        raise ReproError(
            f"unknown algorithm {algorithm!r};"
            f" available: {', '.join(ALGORITHMS)}"
        )
    graph, spec = load_dataset(
        dataset, scale=scale, weighted=info.requires_weights
    )
    if info.requires_undirected and graph.directed:
        graph = graph.as_undirected()
    return graph, spec


def _cmd_datasets() -> int:
    from repro.bench.tables import format_table
    from repro.graph.datasets import DATASETS, dataset_names

    rows = []
    for name in dataset_names():
        spec = DATASETS[name]
        rows.append(
            {
                "name": name,
                "kind": spec.kind,
                "vertices": spec.base_vertices,
                "directed": "yes" if spec.directed else "no",
                "power law": "yes" if spec.power_law else "no",
                "paper |V| (M)": spec.paper_vertices_m,
                "description": spec.description,
            }
        )
    print(format_table(rows, "Table I dataset stand-ins"), end="")
    return 0


def _cmd_validate(args) -> int:
    from repro.validate import format_validation, run_validation

    results = run_validation(scale=args.scale,
                             progress=lambda msg: print(f"... {msg}"))
    print(format_validation(results), end="")
    return 0 if all(c.passed for c in results) else 1


def _cmd_run(args) -> int:
    from repro.core.system import default_backend_config, run_system

    graph, spec = _load(args.dataset, args.algorithm, args.scale)
    backend = args.backend or args.system
    config = default_backend_config(backend, num_cores=args.cores)
    report = run_system(
        graph, args.algorithm, config,
        dataset=spec.name, backend=backend, manifest_path=args.manifest,
        trace_path=args.trace_out, timeline_path=args.metrics_out,
        obs_window=args.obs_window, cache=_resolve_cache(args),
        segment_events=args.segment_events,
        attribution=(
            True if (args.attribution or args.attribution_out) else None
        ),
        attribution_path=args.attribution_out,
        ledger_path=args.ledger,
    )

    for key, value in report.summary().items():
        print(f"{key}: {value}")
    if report.streamed:
        print(f"streamed: {report.num_segments} segments"
              f" x {report.segment_events} events")
    if report.trace_cache and report.trace_cache.get("enabled"):
        state = "hit" if report.trace_cache.get("hit") else "miss"
        print(f"trace_cache: {state}")
    if report.timeline is not None and args.metrics_out:
        print(f"timeline: {report.timeline.num_windows} windows"
              f" -> {args.metrics_out}")
    if args.trace_out:
        print(f"trace: {args.trace_out}")
    if report.attribution is not None:
        from repro.obs import explain_lines

        print()
        for line in explain_lines(report.attribution):
            print(line)
    if args.attribution_out:
        print(f"attribution: {args.attribution_out}")
    return 0


def _cmd_compare(args) -> int:
    from repro.core.system import compare_systems

    graph, spec = _load(args.dataset, args.algorithm, args.scale)
    cmp = compare_systems(
        graph, args.algorithm,
        baseline_config=SimConfig.scaled_baseline(num_cores=args.cores),
        omega_config=SimConfig.scaled_omega(num_cores=args.cores),
        dataset=spec.name,
        cache=_resolve_cache(args),
    )
    for key, value in cmp.summary().items():
        print(f"{key}: {value}")
    return 0


def _cmd_sweep(args) -> int:
    from repro.bench.parallel import (
        build_grid,
        run_sweep,
        save_rows_csv,
        save_rows_json,
    )
    from repro.bench.tables import format_table
    from repro.memsim.engine import get_backend

    algorithms = [a.strip() for a in args.algorithms.split(",") if a.strip()]
    datasets = [d.strip() for d in args.datasets.split(",") if d.strip()]
    backends = [b.strip() for b in args.backends.split(",") if b.strip()]
    if not algorithms or not datasets or not backends:
        raise ReproError("sweep needs at least one algorithm, dataset"
                         " and backend")
    for name in backends:
        get_backend(name)  # fail fast on unknown backend names
    tasks = build_grid(
        datasets, algorithms, backends,
        scale=args.scale, num_cores=args.cores,
    )
    rows = run_sweep(
        tasks, workers=args.workers, cache=_resolve_cache(args),
        prune=args.estimate_prune,
    )

    table = []
    for r in rows:
        if r.get("pruned"):
            table.append({
                "algorithm": r["algorithm"],
                "dataset": r["dataset"],
                "backend": r["backend"],
                "cycles": "pruned",
                "ll hit": "-",
                "dram bytes": r["estimate"]["dram_bytes"],
                "energy nj": "-",
                "cache": r["trace_cache"],
            })
        else:
            table.append({
                "algorithm": r["algorithm"],
                "dataset": r["dataset"],
                "backend": r["backend"],
                "cycles": round(r["cycles"]),
                "ll hit": round(r["last_level_hit_rate"], 4),
                "dram bytes": r["dram_bytes"],
                "energy nj": round(r["energy_nj"], 1),
                "cache": r["trace_cache"],
            })
    print(format_table(table, "backend sweep"), end="")

    pruned = [r for r in rows if r.get("pruned")]
    if args.estimate_prune:
        print(
            f"estimate-prune: skipped {len(pruned)}/{len(rows)} cells"
            f" (band: {args.estimate_prune})"
        )
        for r in pruned:
            print(
                f"  pruned {r['algorithm']}/{r['dataset']}/{r['backend']}:"
                f" {r['pruned']}"
            )

    # When the grid contains the paper's baseline-vs-OMEGA pair, also
    # print the headline ratios (the Fig 14 view of the same rows).
    if "baseline" in backends and "omega" in backends:
        by_cell = {
            (r["algorithm"], r["dataset"], r["backend"]): r
            for r in rows if not r.get("pruned")
        }

        def ratio(num: float, den: float) -> float:
            return round(num / den, 2) if den else float("inf")

        ratios = []
        for algorithm in algorithms:
            for dataset in datasets:
                base = by_cell.get((algorithm, dataset, "baseline"))
                omega = by_cell.get((algorithm, dataset, "omega"))
                if base is None or omega is None:
                    continue  # one side was pruned; no ratio to print
                ratios.append(
                    {
                        "algorithm": algorithm,
                        "dataset": dataset,
                        "speedup": ratio(base["cycles"], omega["cycles"]),
                        "traffic x": ratio(
                            base["onchip_traffic_bytes"],
                            omega["onchip_traffic_bytes"],
                        ),
                        "energy x": ratio(
                            base["energy_nj"], omega["energy_nj"]
                        ),
                    }
                )
        print(format_table(ratios, "OMEGA vs baseline sweep"), end="")

    if args.json_out:
        save_rows_json(rows, args.json_out)
        print(f"rows: {args.json_out}")
    if args.csv_out:
        save_rows_csv(rows, args.csv_out)
        print(f"rows: {args.csv_out}")
    return 0


def _default_lint_root() -> str:
    """The checkout root of the running package (…/src/repro → root)."""
    import repro

    return str(Path(repro.__file__).resolve().parents[2])


def _cmd_lint(args) -> int:
    import sys

    from repro import __version__ as version
    from repro.analyze import dump_json, run_battery, to_json, to_sarif, to_text
    from repro.analyze.baseline import load_baseline, write_baseline

    root = args.root or _default_lint_root()
    rules = None
    if args.rules is not None:
        rules = [r.strip() for r in args.rules.split(",") if r.strip()]
        if not rules:
            raise ReproError("--rules given but no rule ids parsed")

    if args.update_baseline and not args.baseline:
        raise ReproError("--update-baseline requires --baseline PATH")
    baseline = None
    if args.baseline and not args.update_baseline:
        baseline = load_baseline(args.baseline)

    cache_dir = None
    if not args.no_cache:
        cache_dir = args.cache_dir or str(
            Path(root) / ".repro-lint-cache"
        )
    result = run_battery(
        root, rules=rules, cache_dir=cache_dir, baseline=baseline
    )
    if result.cache.enabled:
        print(f"lint-cache: {result.cache.describe()}", file=sys.stderr)

    if args.update_baseline:
        count = write_baseline(args.baseline, result.findings)
        print(f"baseline: {args.baseline} ({count} entries)")
        return 0

    if args.format == "json":
        text = dump_json(to_json(
            result.findings, result.suppressed, result.baselined
        ))
    elif args.format == "sarif":
        text = dump_json(to_sarif(result.findings, result.rules, version))
    else:
        text = to_text(
            result.findings, len(result.suppressed), len(result.baselined)
        )

    if args.out:
        Path(args.out).write_text(text, encoding="utf-8")
        print(f"report: {args.out}")
    else:
        print(text, end="")
    return result.exit_code()


def _cmd_explain(args) -> int:
    import json

    from repro.obs import explain_lines
    from repro.obs.attribution import ATTRIBUTION_SCHEMA

    try:
        with open(args.manifest) as f:
            doc = json.load(f)
    except OSError as exc:
        raise ReproError(f"cannot read {args.manifest}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ReproError(f"{args.manifest} is not valid JSON: {exc}") from exc
    if not isinstance(doc, dict):
        raise ReproError(f"{args.manifest} is not a manifest or attribution"
                         " document")
    if doc.get("schema") == ATTRIBUTION_SCHEMA:
        block = doc
        kern = None
    else:
        block = doc.get("attribution")
        kern = (doc.get("replay") or {}).get("kernel")
        if not block and not kern:
            raise ReproError(
                f"{args.manifest} carries no attribution block and no"
                " kernel telemetry; rerun with 'repro run"
                " --attribution' (or a v6+ manifest)"
            )
    for fld in ("system", "backend", "algorithm", "dataset"):
        if doc.get(fld):
            print(f"{fld}: {doc[fld]}")
    if kern:
        for line in _kernel_lines(kern):
            print(line)
    if block:
        for line in explain_lines(block, top=args.top, sort_by=args.sort):
            print(line)
    return 0


def _kernel_lines(kern):
    """Render a manifest's ``replay.kernel`` screening block."""
    yield "kernel screening:"
    yield (f"  mode: {kern.get('mode', '?')}"
           f"  batches: {kern.get('batches', 0)}"
           f"  events: {kern.get('events', 0)}")
    gens = kern.get("screened_per_generation") or []
    yield (f"  screened: {kern.get('screened', 0)}"
           f" ({100.0 * kern.get('screened_fraction', 0.0):.1f}%)"
           f" over {len(gens)} generation(s): {gens}")
    yield (f"  residual: grouped {kern.get('grouped_events', 0)}"
           f" / serialized {kern.get('serialized_events', 0)}"
           f" in {kern.get('groups', 0)} group(s)")


def _cmd_history(args) -> int:
    from repro.obs import (
        diff_manifests,
        filter_entries,
        format_history,
        format_report,
        read_entries,
        resolve_ledger_path,
    )

    path = resolve_ledger_path(args.ledger)
    if path is None:
        raise ReproError(
            "no ledger given: pass --ledger PATH or set REPRO_LEDGER"
        )
    entries = filter_entries(
        read_entries(path), kind=args.kind, dataset=args.dataset,
        algorithm=args.algorithm, backend=args.backend,
    )
    if args.last > 0:
        entries = entries[-args.last:]
    if not entries:
        print("no matching ledger entries")
        return 1 if args.diff else 0
    print(format_history(entries), end="")
    if args.diff:
        from repro.obs import load_manifest

        golden = load_manifest(args.diff)
        newest = entries[-1].get("manifest") or {}
        result = diff_manifests(golden, newest, tolerance=args.tolerance)
        print()
        print(format_report(result, args.tolerance), end="")
        return 0 if result.ok else 1
    return 0


def _cmd_report(args) -> int:
    from repro.obs import diff_manifests, format_report, load_manifest

    old = load_manifest(args.old)
    new = load_manifest(args.new)
    result = diff_manifests(old, new, tolerance=args.tolerance)
    print(format_report(result, args.tolerance), end="")
    return 0 if result.ok else 1


def _cmd_serve(args) -> int:
    from repro.core.context import RunContext
    from repro.serve import make_server

    context = RunContext.from_env(
        cache=_resolve_cache(args), ledger_path=args.ledger
    )
    server = make_server(
        host=args.host, port=args.port, context=context,
        workers=args.workers, queue_depth=args.queue_depth,
    )
    host, port = server.server_address[:2]
    # Exact format is load-bearing: the CI smoke job and the e2e tests
    # parse the port out of this line (--port 0 binds ephemerally).
    print(f"repro serve listening on http://{host}:{port}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        server.server_close()
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    configure_logging(args.log_level)
    try:
        if args.command == "datasets":
            return _cmd_datasets()
        if args.command == "validate":
            return _cmd_validate(args)
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "compare":
            return _cmd_compare(args)
        if args.command == "sweep":
            return _cmd_sweep(args)
        if args.command == "explain":
            return _cmd_explain(args)
        if args.command == "history":
            return _cmd_history(args)
        if args.command == "report":
            return _cmd_report(args)
        if args.command == "lint":
            return _cmd_lint(args)
        if args.command == "serve":
            return _cmd_serve(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 1  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
