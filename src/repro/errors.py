"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class GraphError(ReproError):
    """Raised for structurally invalid graphs or graph operations."""


class GraphFormatError(GraphError):
    """Raised when parsing a malformed edge-list file."""


class ConfigError(ReproError):
    """Raised for invalid simulator or system configurations."""


class TraceError(ReproError):
    """Raised for malformed memory traces or trace misuse."""


class SimulationError(ReproError):
    """Raised when a simulation cannot proceed."""


class OffloadError(ReproError):
    """Raised when an update function cannot be compiled to PISC microcode."""


class DatasetError(ReproError):
    """Raised for unknown dataset names or bad dataset parameters."""


class ObsError(ReproError, ValueError):
    """Raised for invalid telemetry inputs (metrics, timeline, logging).

    Also a :class:`ValueError` for backward compatibility: these were
    historically raised as bare ``ValueError``, and callers that catch
    that keep working.
    """
