"""System configuration dataclasses (paper Table III).

Two configuration families are provided:

- :meth:`SimConfig.paper_baseline` / :meth:`SimConfig.paper_omega` —
  the paper's exact Table III parameters (16 OoO cores, 2 GHz, 64 B
  lines, 2 MB vs 1 MB+1 MB L2/scratchpad per core, crossbar with
  average 17-cycle remote latency, 4x DDR3-1600 channels).
- :meth:`SimConfig.scaled_baseline` / :meth:`SimConfig.scaled_omega` —
  the same *ratios* scaled down ~500x to match the synthetic dataset
  stand-ins, so that cache-capacity pressure (the phenomenon the paper
  measures) is preserved at tractable trace sizes.

The invariant the paper insists on — **equal total on-chip storage**:
baseline L2-per-core equals OMEGA's (halved L2 + scratchpad) — is
enforced by the constructors.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigError

__all__ = ["CacheConfig", "ScratchpadConfig", "DramConfig", "InterconnectConfig",
           "CoreConfig", "SimConfig"]


@dataclass(frozen=True)
class CacheConfig:
    """One cache level's geometry and latency."""

    size_bytes: int
    ways: int
    line_bytes: int = 64
    latency_cycles: int = 2

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.ways <= 0 or self.line_bytes <= 0:
            raise ConfigError(f"invalid cache geometry: {self}")
        num_lines = self.size_bytes // self.line_bytes
        if num_lines == 0 or num_lines % self.ways:
            raise ConfigError(
                f"cache size {self.size_bytes} not divisible into"
                f" {self.ways}-way sets of {self.line_bytes}B lines"
            )

    @property
    def num_sets(self) -> int:
        """Number of sets."""
        return self.size_bytes // self.line_bytes // self.ways


@dataclass(frozen=True)
class ScratchpadConfig:
    """Per-core scratchpad parameters (Table III: 1 MB, direct, 3 cycles)."""

    size_bytes: int
    latency_cycles: int = 3
    #: Scratchpad accesses are word-granularity, 1-8 bytes.
    max_access_bytes: int = 8

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ConfigError(f"scratchpad size must be >= 0, got {self.size_bytes}")


@dataclass(frozen=True)
class DramConfig:
    """Off-chip memory: latency plus aggregate bandwidth.

    Table III: 4x DDR3-1600 at 12 GB/s per channel; the paper's
    high-level model charges 100 cycles per DRAM access.

    ``page_policy`` implements the paper's Section IX direction 3:

    - ``"closed"`` — every access pays ``latency_cycles`` (the paper's
      evaluated model; the default).
    - ``"open"`` — row-buffer tracking: hits pay ``row_hit_cycles``,
      conflicts pay ``row_miss_cycles``.
    - ``"hybrid"`` — open-page for the sequential structures
      (edgeList & friends), closed-page for the spatially-random
      vtxProp region, as the paper proposes for the least-connected
      vertices.
    """

    latency_cycles: int = 100
    channels: int = 4
    bytes_per_cycle_per_channel: float = 6.0  # 12 GB/s at 2 GHz
    page_policy: str = "closed"
    row_hit_cycles: int = 60
    row_miss_cycles: int = 120
    row_bytes: int = 2048

    def __post_init__(self) -> None:
        if self.page_policy not in ("closed", "open", "hybrid"):
            raise ConfigError(
                f"page_policy must be closed/open/hybrid,"
                f" got {self.page_policy!r}"
            )

    @property
    def total_bytes_per_cycle(self) -> float:
        """Peak aggregate DRAM bandwidth in bytes per core cycle."""
        return self.channels * self.bytes_per_cycle_per_channel


@dataclass(frozen=True)
class InterconnectConfig:
    """On-chip interconnect (Table III: crossbar, 128-bit bus).

    ``remote_latency_cycles`` is the paper's measured average latency
    for a remote scratchpad/L2-bank hop (17 cycles) under the
    ``"crossbar"`` topology. The ``"mesh"`` topology instead charges
    ``mesh_hop_cycles`` per Manhattan hop on a square tile grid — the
    scalable alternative the paper's kilo-core citation points at,
    useful for core-count sensitivity studies.
    """

    remote_latency_cycles: int = 17
    bus_bytes: int = 16  # 128 bits
    #: Header bytes accompanying every packet (request/command).
    header_bytes: int = 8
    topology: str = "crossbar"
    mesh_hop_cycles: int = 3
    #: Router pipeline cycles added to every mesh transfer.
    mesh_router_cycles: int = 2

    def __post_init__(self) -> None:
        if self.topology not in ("crossbar", "mesh"):
            raise ConfigError(
                f"topology must be 'crossbar' or 'mesh', got {self.topology!r}"
            )


@dataclass(frozen=True)
class CoreConfig:
    """Core timing knobs for the analytic model.

    ``mlp`` is the effective memory-level parallelism an 8-wide,
    192-entry-ROB OoO core extracts from a pointer-chasing graph
    workload; ``atomic_stall_cycles`` is the pipeline hold the paper
    attributes to core-executed atomics (their motivation experiment
    measured up to 50% slowdown from atomics alone).
    """

    num_cores: int = 16
    freq_ghz: float = 2.0
    mlp: float = 4.0
    #: Residual serialization of a core-executed atomic beyond its
    #: memory round trip.
    atomic_stall_cycles: int = 4
    #: Fraction of a core atomic's memory latency that serializes the
    #: pipeline (the rest overlaps with atomics to independent lines).
    atomic_serialization: float = 0.3
    compute_cycles_per_access: float = 1.0
    #: Cycles for a core to issue a PISC offload packet (fire-and-forget).
    offload_issue_cycles: int = 1
    #: Work-stealing residual imbalance: Ligra's scheduler balances
    #: per-core work, leaving a small tail (the paper tuned OpenMP
    #: scheduling for the same reason).
    imbalance_factor: float = 1.1

    def __post_init__(self) -> None:
        if self.num_cores <= 0:
            raise ConfigError(f"num_cores must be > 0, got {self.num_cores}")
        if self.mlp <= 0:
            raise ConfigError(f"mlp must be > 0, got {self.mlp}")


@dataclass(frozen=True)
class SimConfig:
    """Complete system description for one simulation run."""

    name: str
    core: CoreConfig
    l1: CacheConfig
    l2_per_core: CacheConfig
    scratchpad: ScratchpadConfig
    dram: DramConfig
    interconnect: InterconnectConfig
    #: OMEGA feature switches (all False = baseline CMP).
    use_scratchpad: bool = False
    use_pisc: bool = False
    use_source_buffer: bool = False
    source_buffer_entries: int = 64
    #: PISC per-op latency (simple ALU + SP read/write).
    pisc_op_cycles: int = 4

    @property
    def total_onchip_bytes(self) -> int:
        """Total L2 + scratchpad storage across the chip (the paper's
        'same-sized' comparison invariant)."""
        return self.core.num_cores * (
            self.l2_per_core.size_bytes + self.scratchpad.size_bytes
        )

    @property
    def scratchpad_total_bytes(self) -> int:
        """Aggregate scratchpad capacity across all cores."""
        return self.core.num_cores * self.scratchpad.size_bytes

    def as_dict(self) -> dict:
        """Nested plain-dict form of the full configuration."""
        from dataclasses import asdict

        return asdict(self)

    def config_hash(self) -> str:
        """Stable short hash of every configuration parameter.

        Two runs with the same hash simulated the same machine; the
        hash goes into run manifests so result files are traceable to
        their configuration without storing it wholesale.
        """
        import hashlib
        import json

        blob = json.dumps(self.as_dict(), sort_keys=True)
        return hashlib.sha256(blob.encode()).hexdigest()[:12]

    def with_scratchpad_bytes(self, per_core_bytes: int) -> "SimConfig":
        """Return a copy with a different scratchpad size (Fig 19 sweep).

        Only the scratchpad changes; L2 stays fixed, matching the
        paper's sensitivity study ("we kept the size of the L2 cache
        the same ... for all configurations").
        """
        return replace(
            self, scratchpad=replace(self.scratchpad, size_bytes=per_core_bytes)
        )

    # ------------------------------------------------------------------
    # Paper-scale configurations (Table III)
    # ------------------------------------------------------------------
    @classmethod
    def paper_baseline(cls) -> "SimConfig":
        """Table III baseline: 16 cores, 2 MB shared L2 per core."""
        return cls(
            name="baseline-cmp",
            core=CoreConfig(),
            l1=CacheConfig(size_bytes=16 * 1024, ways=4, latency_cycles=2),
            l2_per_core=CacheConfig(size_bytes=2 * 1024 * 1024, ways=8,
                                    latency_cycles=12),
            scratchpad=ScratchpadConfig(size_bytes=0),
            dram=DramConfig(),
            interconnect=InterconnectConfig(),
        )

    @classmethod
    def paper_omega(cls) -> "SimConfig":
        """Table III OMEGA: half the L2 repurposed as scratchpad + PISC."""
        return cls(
            name="omega",
            core=CoreConfig(),
            l1=CacheConfig(size_bytes=16 * 1024, ways=4, latency_cycles=2),
            l2_per_core=CacheConfig(size_bytes=1024 * 1024, ways=8,
                                    latency_cycles=12),
            scratchpad=ScratchpadConfig(size_bytes=1024 * 1024),
            dram=DramConfig(),
            interconnect=InterconnectConfig(),
            use_scratchpad=True,
            use_pisc=True,
            use_source_buffer=True,
        )

    # ------------------------------------------------------------------
    # Scaled configurations for the synthetic stand-ins
    # ------------------------------------------------------------------
    @classmethod
    def scaled_baseline(cls, num_cores: int = 16,
                        l2_per_core_bytes: int = 2048) -> "SimConfig":
        """Baseline CMP scaled ~500x down alongside the datasets.

        Total on-chip L2 is 32 KB at the defaults — the same ratio to
        the stand-in datasets' vtxProp footprints that the paper's
        32 MB has to its real datasets (e.g. lj's 42 MB).
        """
        return cls(
            name="baseline-cmp-scaled",
            core=CoreConfig(num_cores=num_cores),
            l1=CacheConfig(size_bytes=1024, ways=4, latency_cycles=2),
            l2_per_core=CacheConfig(size_bytes=l2_per_core_bytes, ways=8,
                                    latency_cycles=12),
            scratchpad=ScratchpadConfig(size_bytes=0),
            dram=DramConfig(),
            interconnect=InterconnectConfig(),
        )

    @classmethod
    def scaled_omega(cls, num_cores: int = 16,
                     l2_per_core_bytes: int = 1024,
                     scratchpad_per_core_bytes: int = 1024,
                     use_pisc: bool = True,
                     use_source_buffer: bool = True) -> "SimConfig":
        """OMEGA scaled to match :meth:`scaled_baseline` total storage."""
        return cls(
            name="omega-scaled",
            core=CoreConfig(num_cores=num_cores),
            l1=CacheConfig(size_bytes=1024, ways=4, latency_cycles=2),
            l2_per_core=CacheConfig(size_bytes=l2_per_core_bytes, ways=8,
                                    latency_cycles=12),
            scratchpad=ScratchpadConfig(size_bytes=scratchpad_per_core_bytes),
            dram=DramConfig(),
            interconnect=InterconnectConfig(),
            use_scratchpad=True,
            use_pisc=use_pisc,
            use_source_buffer=use_source_buffer,
        )
