"""``repro.store`` — persistent, content-addressed trace caching.

See :mod:`repro.store.store` for the design; the package exists so the
store can grow siblings (remote stores, result stores) without moving
the public names.
"""

from repro.store.store import (
    DEFAULT_CAPACITY_BYTES,
    ENV_CACHE_CAPACITY_MB,
    ENV_CACHE_DIR,
    SIDECAR_VERSION,
    StoreEntry,
    TraceStore,
    get_store,
    installed_store,
    normalize_kwargs,
    reset_store,
    resolve_store,
    set_store,
    trace_key,
    use_store,
)

__all__ = [
    "DEFAULT_CAPACITY_BYTES",
    "ENV_CACHE_CAPACITY_MB",
    "ENV_CACHE_DIR",
    "SIDECAR_VERSION",
    "StoreEntry",
    "TraceStore",
    "get_store",
    "installed_store",
    "normalize_kwargs",
    "reset_store",
    "resolve_store",
    "set_store",
    "trace_key",
    "use_store",
]
