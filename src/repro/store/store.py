"""Persistent, content-addressed trace store.

Trace *generation* (reorder + algorithm execution over the Ligra
engine) dominates end-to-end wall-clock now that replay is
batch-vectorized, yet the trace is a pure function of

``(graph content, algorithm, algorithm kwargs, num_cores, chunk_size,
reorder key)``

and is byte-identical across every hierarchy backend that replays it.
The store caches each distinct trace exactly once under a
content-addressed key:

- the graph component is :meth:`repro.graph.csr.CSRGraph.fingerprint`
  (a memoized blake2b of the CSR arrays), so renaming a dataset or
  re-generating an identical synthetic graph still hits;
- the remaining components are folded in via a canonical JSON blob
  hashed with blake2b (:func:`trace_key`).

Each entry is two files in the store root:

- ``<key>.npz`` — a *segmented, interleaved* trace archive
  (:class:`~repro.ligra.segments.SegmentedTrace`): warm hits can be
  streamed into the replay one bounded segment at a time
  (:meth:`TraceStore.open_segments`) without ever rehydrating the
  whole trace, and :meth:`TraceStore.load` still materializes it
  in-core for whole-trace replay;
- ``<key>.json`` — a sidecar with the downstream metadata
  :func:`repro.core.system.run_system` needs to skip generation
  entirely (vtxProp address ranges, bytes-per-vertex, event count,
  graph shape) plus format versions for compatibility checks.

Cold streaming runs spool their trace to disk while it is generated
(:class:`~repro.ligra.segments.SpoolingTraceBuilder`) and hand the
finished archive to :meth:`TraceStore.adopt`, which moves it into
place without a read-back.

Entries are evicted LRU by file mtime when the store grows past its
size cap. Writes are atomic (temp file + ``os.replace``) so concurrent
sweep workers can share one store: the worst case under a race is
duplicated generation work, never a torn entry. Corrupted or
version-mismatched entries are discarded and treated as misses, so the
cache can only ever cost a regeneration, not correctness.

Controls: the ambient store honours the ``REPRO_CACHE_DIR`` and
``REPRO_CACHE_CAPACITY_MB`` environment variables; the CLI adds
``--cache-dir`` / ``--no-cache``.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import shutil
import tempfile
import time
import zipfile
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.errors import TraceError
from repro.ligra.segments import DEFAULT_SEGMENT_EVENTS, SegmentedTrace
from repro.ligra.trace import TRACE_FORMAT_VERSION, Trace
from repro.obs import get_registry

__all__ = [
    "SIDECAR_VERSION",
    "DEFAULT_CAPACITY_BYTES",
    "StoreEntry",
    "TraceStore",
    "trace_key",
    "normalize_kwargs",
    "get_store",
    "set_store",
    "use_store",
    "installed_store",
    "resolve_store",
]

_LOG = logging.getLogger("repro.store")

#: Sidecar metadata format version; bumped whenever the metadata the
#: replay stage consumes changes shape.
SIDECAR_VERSION = 1

#: Default store size cap (bytes). The scaled stand-in traces are a
#: few MB each, so this holds hundreds of distinct workloads.
DEFAULT_CAPACITY_BYTES = 512 * 1024 * 1024

#: Environment variables controlling the ambient store.
ENV_CACHE_DIR = "REPRO_CACHE_DIR"
ENV_CACHE_CAPACITY_MB = "REPRO_CACHE_CAPACITY_MB"

#: Orphaned ``.*.tmp*`` files (left by a writer killed mid
#: ``_atomic_write``) older than this are garbage-collected during
#: :meth:`TraceStore.evict`. Young temp files are left alone — they
#: may belong to a live concurrent writer.
ORPHAN_TMP_AGE_SECONDS = 3600.0


def normalize_kwargs(kwargs: Dict) -> Optional[Dict]:
    """Canonicalize algorithm kwargs for hashing.

    Returns a JSON-able dict, or ``None`` when a value cannot be
    canonicalized — the caller then bypasses the cache for that run
    instead of risking a false hit.
    """
    out: Dict = {}
    for name in sorted(kwargs):
        value = kwargs[name]
        if isinstance(value, (np.integer,)):
            value = int(value)
        elif isinstance(value, (np.floating,)):
            value = float(value)
        elif isinstance(value, (np.bool_,)):
            value = bool(value)
        if value is None or isinstance(value, (bool, int, float, str)):
            out[name] = value
        else:
            return None
    return out


def trace_key(
    graph,
    algorithm: str,
    num_cores: int,
    chunk_size: Optional[int],
    reorder: Optional[str],
    alg_kwargs: Optional[Dict] = None,
) -> Optional[str]:
    """Content-addressed cache key for one trace-generation run.

    ``reorder`` is the reorder recipe applied before generation
    (``"in"`` for the default nth-element in-degree pass, ``None`` for
    the original ordering). Returns ``None`` when the kwargs cannot be
    canonicalized (caching is then skipped for the run).
    """
    kwargs = normalize_kwargs(alg_kwargs or {})
    if kwargs is None:
        return None
    payload = {
        "trace_format": TRACE_FORMAT_VERSION,
        "sidecar": SIDECAR_VERSION,
        "graph": graph.fingerprint(),
        "algorithm": str(algorithm),
        "num_cores": int(num_cores),
        "chunk_size": None if chunk_size is None else int(chunk_size),
        "reorder": reorder,
        "kwargs": kwargs,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(blob.encode(), digest_size=16).hexdigest()


@dataclass(frozen=True)
class StoreEntry:
    """One cached trace: its key, on-disk size, and last-use time."""

    key: str
    nbytes: int
    mtime: float


class TraceStore:
    """A size-capped, LRU-evicted directory of cached traces.

    The store is stateless between calls (all bookkeeping lives in the
    filesystem), so any number of processes — e.g. the workers of
    ``repro sweep`` — can share one root directory.
    """

    def __init__(
        self,
        root: Union[str, os.PathLike],
        capacity_bytes: Optional[int] = None,
    ) -> None:
        self.root = Path(root)
        if capacity_bytes is None:
            # Deprecated ambient fallback; environment reads live in
            # repro.core.context (imported lazily — the context module
            # itself imports this one).
            from repro.core.context import cache_capacity_from_env

            capacity_bytes = (
                cache_capacity_from_env() or DEFAULT_CAPACITY_BYTES
            )
        if capacity_bytes <= 0:
            raise TraceError(
                f"trace-store capacity must be > 0, got {capacity_bytes}"
            )
        self.capacity_bytes = int(capacity_bytes)

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def trace_path(self, key: str) -> Path:
        """On-disk path of the compressed trace for ``key``."""
        return self.root / f"{key}.npz"

    def meta_path(self, key: str) -> Path:
        """On-disk path of the JSON sidecar for ``key``."""
        return self.root / f"{key}.json"

    # ------------------------------------------------------------------
    # Lookup / insert
    # ------------------------------------------------------------------
    def load(self, key: str) -> Optional[Tuple[Trace, Dict]]:
        """Fetch ``(trace, metadata)`` for ``key``, or ``None`` on miss.

        Any defect — missing files, truncated archive, version
        mismatch, malformed sidecar — discards the entry and reports a
        miss, so callers always fall back to regeneration.
        """
        counters = get_registry()
        meta_path = self.meta_path(key)
        trace_path = self.trace_path(key)
        try:
            meta = self._read_sidecar(meta_path)
            trace = Trace.load(trace_path)
            if trace.num_events != int(meta.get("num_events", -1)):
                raise TraceError(
                    f"event count {trace.num_events} does not match"
                    f" sidecar {meta.get('num_events')!r}"
                )
        except FileNotFoundError:
            counters.counter("trace_store.misses").inc()
            return None
        except (
            TraceError, OSError, ValueError, KeyError, zipfile.BadZipFile,
        ) as exc:
            _LOG.warning(
                "trace store: discarding unusable entry %s (%s)", key, exc
            )
            counters.counter("trace_store.corrupt").inc()
            counters.counter("trace_store.misses").inc()
            self.discard(key)
            return None
        self._touch(trace_path, meta_path)
        counters.counter("trace_store.hits").inc()
        return trace, meta

    def open_segments(self, key: str) -> Optional[Tuple[SegmentedTrace, Dict]]:
        """Fetch ``(segments, metadata)`` for ``key``, or ``None`` on miss.

        The warm-hit streaming path: the returned
        :class:`~repro.ligra.segments.SegmentedTrace` reads one
        bounded segment at a time straight from the archive — the
        whole trace is never resident. Validation and
        corruption-discard semantics match :meth:`load`; the caller
        owns closing the handle (it is a context manager).
        """
        counters = get_registry()
        meta_path = self.meta_path(key)
        trace_path = self.trace_path(key)
        try:
            meta = self._read_sidecar(meta_path)
            segments = SegmentedTrace.open(trace_path)
            try:
                if segments.num_events != int(meta.get("num_events", -1)):
                    raise TraceError(
                        f"event count {segments.num_events} does not match"
                        f" sidecar {meta.get('num_events')!r}"
                    )
                if not segments.interleaved:
                    raise TraceError("stored archive is not interleaved")
            except BaseException:
                segments.close()
                raise
        except FileNotFoundError:
            counters.counter("trace_store.misses").inc()
            return None
        except (
            TraceError, OSError, ValueError, KeyError, zipfile.BadZipFile,
        ) as exc:
            _LOG.warning(
                "trace store: discarding unusable entry %s (%s)", key, exc
            )
            counters.counter("trace_store.corrupt").inc()
            counters.counter("trace_store.misses").inc()
            self.discard(key)
            return None
        self._touch(trace_path, meta_path)
        counters.counter("trace_store.hits").inc()
        return segments, meta

    def store(self, key: str, trace: Trace, meta: Dict,
              segment_events: Optional[int] = None) -> None:
        """Insert (or overwrite) one entry atomically, then evict LRU.

        The archive is written segmented and interleaved
        (``segment_events`` per segment, default
        :data:`~repro.ligra.segments.DEFAULT_SEGMENT_EVENTS`) so a
        later warm hit can stream it without rehydration.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        doc = dict(meta)
        doc.setdefault("sidecar_version", SIDECAR_VERSION)
        doc.setdefault("trace_format_version", TRACE_FORMAT_VERSION)
        doc.setdefault("num_events", trace.num_events)
        doc.setdefault("key", key)
        step = int(segment_events) if segment_events else DEFAULT_SEGMENT_EVENTS
        # Trace first, sidecar second: the sidecar's presence marks the
        # entry complete, so a reader never sees a half-written pair.
        self._atomic_write(
            self.trace_path(key),
            lambda path: SegmentedTrace.from_trace(trace, step).save(path),
        )
        self._atomic_write(
            self.meta_path(key),
            lambda path: Path(path).write_text(
                json.dumps(doc, indent=2, sort_keys=True)
            ),
        )
        get_registry().counter("trace_store.stores").inc()
        self.evict()

    def adopt(self, key: str, archive_path: Union[str, os.PathLike],
              meta: Dict) -> None:
        """Move a spooled segmented archive into the store (no copy).

        The cold streaming path: a
        :class:`~repro.ligra.segments.SpoolingTraceBuilder` already
        wrote the interleaved archive to ``archive_path``; renaming it
        into place makes it this key's entry without the trace ever
        being resident. ``meta`` must carry ``num_events`` (readers
        validate against it).
        """
        if "num_events" not in meta:
            raise TraceError("adopt() needs meta['num_events']")
        self.root.mkdir(parents=True, exist_ok=True)
        doc = dict(meta)
        doc.setdefault("sidecar_version", SIDECAR_VERSION)
        doc.setdefault("trace_format_version", TRACE_FORMAT_VERSION)
        doc.setdefault("key", key)
        trace_path = self.trace_path(key)
        src = os.fspath(archive_path)
        try:
            os.replace(src, trace_path)
        except OSError:
            # Spool directory on another filesystem: fall back to a
            # copy-and-delete move.
            shutil.move(src, trace_path)
        self._atomic_write(
            self.meta_path(key),
            lambda path: Path(path).write_text(
                json.dumps(doc, indent=2, sort_keys=True)
            ),
        )
        get_registry().counter("trace_store.stores").inc()
        self.evict()

    def discard(self, key: str) -> None:
        """Remove one entry (both files), tolerating races."""
        for path in (self.meta_path(key), self.trace_path(key)):
            try:
                path.unlink()
            except OSError:
                pass

    # ------------------------------------------------------------------
    # Size accounting / eviction
    # ------------------------------------------------------------------
    def entries(self) -> List[StoreEntry]:
        """All complete entries, oldest (least recently used) first."""
        found: List[StoreEntry] = []
        try:
            sidecars = sorted(self.root.glob("*.json"))
        except OSError:
            return found
        for meta_path in sidecars:
            if meta_path.name.startswith("."):
                continue  # in-flight temp file from _atomic_write
            key = meta_path.stem
            trace_path = self.trace_path(key)
            try:
                stat_t = trace_path.stat()
                stat_m = meta_path.stat()
            except OSError:
                continue
            found.append(
                StoreEntry(
                    key=key,
                    nbytes=stat_t.st_size + stat_m.st_size,
                    mtime=max(stat_t.st_mtime, stat_m.st_mtime),
                )
            )
        found.sort(key=lambda e: (e.mtime, e.key))
        return found

    def total_bytes(self) -> int:
        """Total on-disk size of all complete entries."""
        return sum(e.nbytes for e in self.entries())

    def __len__(self) -> int:
        return len(self.entries())

    def evict(self) -> int:
        """Drop least-recently-used entries until under capacity.

        Also garbage-collects temp files orphaned by writers killed
        mid-write (older than :data:`ORPHAN_TMP_AGE_SECONDS`).
        Returns the number of entries evicted.
        """
        self._collect_orphans()
        entries = self.entries()
        total = sum(e.nbytes for e in entries)
        evicted = 0
        for entry in entries:
            if total <= self.capacity_bytes:
                break
            self.discard(entry.key)
            total -= entry.nbytes
            evicted += 1
        if evicted:
            _LOG.info(
                "trace store: evicted %d LRU entries (%d bytes kept)",
                evicted, total,
            )
            get_registry().counter("trace_store.evictions").inc(evicted)
        return evicted

    def clear(self) -> None:
        """Remove every entry."""
        for entry in self.entries():
            self.discard(entry.key)

    def _collect_orphans(self) -> int:
        """Delete aged ``.*.tmp*`` leftovers from interrupted writes.

        A crash (or kill) between ``mkstemp`` and ``os.replace`` in
        :meth:`_atomic_write` strands a dot-prefixed temp file that
        :meth:`entries` never counts — without collection the store
        would leak capacity invisibly. Files younger than the age gate
        are spared: they may belong to a writer that is still running.
        """
        removed = 0
        now = time.time()
        try:
            candidates = list(self.root.glob(".*.tmp*"))
        except OSError:
            return 0
        for path in candidates:
            try:
                if now - path.stat().st_mtime < ORPHAN_TMP_AGE_SECONDS:
                    continue
                path.unlink()
                removed += 1
            except OSError:
                continue
        if removed:
            _LOG.info(
                "trace store: collected %d orphaned temp file(s)", removed
            )
            get_registry().counter("trace_store.orphans_collected").inc(
                removed
            )
        return removed

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @staticmethod
    def _read_sidecar(meta_path: Path) -> Dict:
        """Parse and version-check one sidecar, raising on any defect."""
        with open(meta_path) as f:
            meta = json.load(f)
        if not isinstance(meta, dict):
            raise TraceError(f"{meta_path} is not a sidecar object")
        if meta.get("sidecar_version") != SIDECAR_VERSION:
            raise TraceError(
                f"sidecar version {meta.get('sidecar_version')!r}"
                f" != {SIDECAR_VERSION}"
            )
        if meta.get("trace_format_version") != TRACE_FORMAT_VERSION:
            raise TraceError(
                f"trace format {meta.get('trace_format_version')!r}"
                f" != {TRACE_FORMAT_VERSION}"
            )
        return meta

    @staticmethod
    def _touch(*paths: Path) -> None:
        for path in paths:
            try:
                os.utime(path)
            except OSError:
                pass

    @staticmethod
    def _atomic_write(path: Path, writer) -> None:
        # Keep the real suffix on the temp name: np.savez_compressed
        # appends ".npz" to names that lack it, which would orphan the
        # temp file and break the rename.
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=f".{path.stem}.", suffix=f".tmp{path.suffix}"
        )
        os.close(fd)
        try:
            writer(tmp)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TraceStore(root={str(self.root)!r},"
            f" capacity_bytes={self.capacity_bytes})"
        )


# ----------------------------------------------------------------------
# Ambient store (deprecated compatibility veneer)
#
# The process-global resolution below predates the explicit
# :class:`repro.core.context.RunContext`. It is retained so existing
# callers keep working, but it is *not* reentrant: the globals are
# process-wide, so two threads using set_store/use_store race each
# other. New code should build a RunContext (whose ``from_env``
# honours an installed store via :func:`installed_store`) and pass it
# to run_system explicitly.
# ----------------------------------------------------------------------
_ambient_store: Optional[TraceStore] = None
_ambient_installed = False


def installed_store() -> Tuple[bool, Optional[TraceStore]]:
    """The explicitly installed ambient store, without any env reads.

    Returns ``(installed, store)``: ``installed`` is True after
    :func:`set_store`/:func:`use_store` (even for ``set_store(None)``,
    which pins caching off). :meth:`repro.core.context.RunContext.from_env`
    consults this before falling back to ``REPRO_CACHE_DIR``, so the
    deprecated global keeps winning exactly as it used to.
    """
    return _ambient_installed, _ambient_store


def get_store() -> Optional[TraceStore]:
    """The ambient trace store, or ``None`` when caching is disabled.

    Deprecated veneer: an explicitly installed store
    (:func:`set_store`/:func:`use_store`) wins; otherwise resolution
    delegates to :func:`repro.core.context.store_from_env` (the
    ``REPRO_CACHE_DIR`` environment variable). With neither, caching
    is off — the library never writes outside directories it was
    pointed at. Prefer carrying a store on a
    :class:`repro.core.context.RunContext`.
    """
    if _ambient_installed:
        return _ambient_store
    from repro.core.context import store_from_env

    return store_from_env()


def set_store(store: Optional[TraceStore]) -> None:
    """Install ``store`` as the process-wide ambient trace store.

    Deprecated: the global is process-wide, not per-run — concurrent
    runs should pass a store on a
    :class:`repro.core.context.RunContext` instead. ``set_store(None)``
    pins caching *off* regardless of environment (the explicit
    per-run analogue is ``RunContext(store=None)``); call
    :func:`reset_store` to restore environment-driven resolution.
    """
    global _ambient_store, _ambient_installed
    _ambient_store = store
    _ambient_installed = True


def reset_store() -> None:
    """Return to environment-driven ambient-store resolution."""
    global _ambient_store, _ambient_installed
    _ambient_store = None
    _ambient_installed = False


@contextmanager
def use_store(store: Optional[TraceStore]):
    """Context manager installing ``store`` for the enclosed scope.

    .. deprecated::
        ``use_store`` mutates process-wide globals and is **not
        thread-safe**: a second thread entering or leaving the context
        manager interleaves save/restore of the shared slot, and any
        concurrent ``run_system`` resolves whichever store happens to
        be installed at that instant. Pass the store explicitly —
        ``run_system(..., cache=store)`` or
        ``run_system(..., context=RunContext(store=store))`` — for
        anything concurrent.
    """
    global _ambient_store, _ambient_installed
    prev_store, prev_installed = _ambient_store, _ambient_installed
    _ambient_store = store
    _ambient_installed = True
    try:
        yield store
    finally:
        _ambient_store, _ambient_installed = prev_store, prev_installed


def resolve_store(
    cache: Union[None, bool, str, os.PathLike, TraceStore],
) -> Optional[TraceStore]:
    """Map a driver-level ``cache`` argument onto a store instance.

    - ``None`` / ``True`` — the ambient store (:func:`get_store`);
    - ``False`` — caching off;
    - a path — a :class:`TraceStore` rooted there;
    - a :class:`TraceStore` — itself.
    """
    if cache is False:
        return None
    if isinstance(cache, TraceStore):
        return cache
    if isinstance(cache, (str, os.PathLike)):
        return TraceStore(cache)
    return get_store()
