"""Full-system drivers: run an algorithm on a graph through a hierarchy.

This is the library's main entry point. :func:`run_system` executes one
(algorithm, graph, configuration, backend) tuple end-to-end:

1. optionally reorder the graph by popularity (OMEGA's offline
   preprocessing, Section VI — nth-element in-degree by default),
2. run the algorithm over the Ligra engine, collecting the memory
   trace — or fetch the identical trace from the persistent
   content-addressed store (:mod:`repro.store`) when a prior run
   already generated it,
3. size the scratchpad mapping from the algorithm's vtxProp footprint
   (Section V-A: one line holds all of a vertex's entries plus the
   active bit) and compile the algorithm's update function to PISC
   microcode (Section V-F),
4. replay the trace through the selected memory-hierarchy backend
   (any name in :func:`repro.memsim.engine.backend_names`), and
5. fold the counters into timing and energy.

Every hierarchy variant — baseline CMP, OMEGA, the Section IX locked
cache, GraphPIM, the dynamic scratchpad — runs through the same driver
via ``run_system(..., backend=...)``; :func:`run_locked_cache` and
:func:`run_graphpim` are thin aliases kept for compatibility.

Because the trace depends only on ``(graph, algorithm, kwargs, cores,
chunk, reorder)`` — never on the hierarchy replaying it —
:func:`run_backends` generates (or loads) each *distinct* trace once
and replays every requested backend against it. :func:`compare_systems`
is a thin wrapper over it that returns the paper's headline ratios
(speedup, traffic reduction, DRAM bandwidth improvement, energy
saving).
"""

from __future__ import annotations

import logging
import os
import sys
import tempfile
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.config import SimConfig
from repro.core.context import (
    ENV_ATTRIBUTION,
    ENV_SEGMENT_EVENTS,
    RunContext,
    RunRequest,
    attribution_from_env,
    segment_events_from_env,
)
from repro.errors import SimulationError
from repro.graph.csr import CSRGraph
from repro.graph.degree import degree_classes
from repro.graph.reorder import nth_element_order, reorder_nth_element
from repro.algorithms.common import AlgorithmResult, default_source
from repro.algorithms.registry import run_algorithm
from repro.core.offload import microcode_for_algorithm
from repro.core.report import Comparison, SimReport
from repro.ligra.segments import SegmentedTrace, SpoolingTraceBuilder
from repro.ligra.trace import Trace
from repro.memsim.core_model import compute_timing
from repro.memsim.energy import EnergyModel
from repro.memsim.estimate import ReplayEstimate, estimate_replay
from repro.memsim.engine import (
    BaselineBackend,
    DynamicScratchpadBackend,
    GraphPimBackend,
    LockedCacheBackend,
    OmegaBackend,
    get_backend,
)
from repro.memsim.mapping import ScratchpadMapping
from repro.memsim.scratchpad import hot_capacity_for
from repro.obs import (
    AttributionAccumulator,
    AttributionSpec,
    ReplaySampler,
    SpanTracer,
    append_entry,
    get_registry,
    get_tracer,
    make_entry,
    use_registry,
    use_tracer,
)
from repro.obs.attribution import FIELDS as ATTRIBUTION_FIELDS
from repro.store import TraceStore, trace_key

__all__ = [
    "run_system",
    "estimate_system",
    "run_backends",
    "compare_systems",
    "run_locked_cache",
    "run_graphpim",
    "default_backend_config",
    "DEFAULT_CHUNK_SIZE",
    "RunContext",
    "RunRequest",
    "ENV_SEGMENT_EVENTS",
    "ENV_ATTRIBUTION",
]

_LOG = logging.getLogger("repro.core.system")

#: Default OpenMP-schedule chunk (and matching scratchpad-mapping chunk).
DEFAULT_CHUNK_SIZE = 32

# ENV_SEGMENT_EVENTS / ENV_ATTRIBUTION are re-exported from
# repro.core.context, the single module allowed to read REPRO_*
# environment variables (their behaviour is unchanged).

#: Report labels for backends whose name differs from the config name.
_BACKEND_LABELS = {
    "locked": "locked-cache",
    "graphpim": "graphpim",
    "dynamic": "dynamic-scratchpad",
}

#: Whether each backend's required preprocessing includes the offline
#: popularity reordering (Section VI). GraphPIM and the dynamic
#: scratchpad are explicitly "no preprocessing" designs; the baseline
#: runs the paper's original ordering.
_REORDER_DEFAULT = {
    "baseline": False,
    "omega": True,
    "locked": True,
    "graphpim": False,
    "dynamic": False,
}

#: The reorder recipe run_system applies (the trace-store key names it).
_REORDER_RECIPE = "nth-element/in"

#: Backends whose on-chip hot-vertex structure must be sized from the
#: algorithm's vtxProp footprint.
_HOT_SET_BACKENDS = ("omega", "locked", "dynamic")


def default_backend_config(backend: str, num_cores: int = 16) -> SimConfig:
    """The conventional scaled configuration for a named backend.

    Mirrors the paper's same-total-storage comparisons: baseline and
    GraphPIM keep the full cache hierarchy, the locked cache repurposes
    half the L2 without PISCs, OMEGA and the dynamic scratchpad run the
    full Table III OMEGA design. Used by the CLI and by
    :func:`run_backends` when no explicit config is given.
    """
    if backend in ("baseline", "graphpim"):
        return SimConfig.scaled_baseline(num_cores=num_cores)
    if backend == "locked":
        return SimConfig.scaled_omega(
            num_cores=num_cores, use_pisc=False, use_source_buffer=False
        )
    return SimConfig.scaled_omega(num_cores=num_cores)


@dataclass
class _TraceBundle:
    """Everything the replay stage needs from trace generation.

    Exactly this bundle is what the trace store persists: the columnar
    trace in the ``.npz`` plus the remaining fields in the JSON sidecar
    — so a warm hit can skip reorder and algorithm execution entirely.

    Exactly one of ``trace`` (whole-trace in-core) and ``segments``
    (out-of-core streaming: a bounded-memory
    :class:`~repro.ligra.segments.SegmentedTrace` handle) is set.
    """

    trace: Optional[Trace]
    #: vtxProp (start, end) address ranges — the spatially-random
    #: regions the hybrid DRAM page policy serves close-page
    #: (Section IX direction 3).
    vtx_ranges: List[Tuple[int, int]]
    bytes_per_vertex: int
    num_vertices: int
    num_edges: int
    cache_enabled: bool = False
    cache_hit: bool = False
    cache_key: Optional[str] = None
    segments: Optional[SegmentedTrace] = None
    #: Resolved streaming segment size (``None`` for in-core runs).
    segment_events: Optional[int] = None
    #: Spool file this bundle owns and must delete on cleanup (only
    #: when the unlink-while-open trick was unavailable).
    spool_path: Optional[str] = None

    @property
    def num_events(self) -> int:
        source = self.trace if self.trace is not None else self.segments
        return source.num_events

    @property
    def nbytes(self) -> int:
        source = self.trace if self.trace is not None else self.segments
        return source.nbytes

    def cache_info(self) -> Dict:
        """Manifest ``trace_cache`` block."""
        return {
            "enabled": self.cache_enabled,
            "hit": self.cache_hit,
            "key": self.cache_key,
        }

    def cleanup(self) -> None:
        """Release the streaming handle and any owned spool file."""
        if self.segments is not None:
            self.segments.close()
        if self.spool_path is not None:
            try:
                os.unlink(self.spool_path)
            except OSError:
                pass
            self.spool_path = None


def _resolve_segment_events(segment_events: Optional[int]) -> Optional[int]:
    """Fold the explicit argument with ``REPRO_SEGMENT_EVENTS``.

    Returns a positive segment size, or ``None`` for in-core replay
    (the default; 0 and negative values also mean off). The
    environment read lives in :mod:`repro.core.context`.
    """
    if segment_events is None:
        return segment_events_from_env()
    if int(segment_events) <= 0:
        return None
    return int(segment_events)


def _resolve_attribution(attribution: Optional[bool]) -> bool:
    """Fold the explicit argument with ``REPRO_ATTRIBUTION``."""
    if attribution is not None:
        return bool(attribution)
    return attribution_from_env()


def _attribution_spec(
    graph: CSRGraph, bundle: "_TraceBundle", reorder: bool
) -> AttributionSpec:
    """Build the run's attribution spec from the graph and its trace.

    The degree strata are computed on the *original* graph and, when
    the run reordered, permuted into trace id space with the same
    nth-element order the reorder applied — recomputed here from the
    degree vector, so warm store hits (which skip the reorder entirely)
    classify identically to cold runs.
    """
    source = bundle.trace if bundle.trace is not None else bundle.segments
    regions = tuple(getattr(source, "regions", ()) or ())
    deg = graph.in_degrees()
    vclass = degree_classes(deg)
    if reorder and len(vclass):
        vclass = vclass[nth_element_order(deg)]
    counts = [int((vclass == c).sum()) for c in range(3)]
    return AttributionSpec(
        regions=regions,
        vertex_classes=vclass,
        meta={
            "degree_key": "in",
            "hub_fraction": 0.20,
            "torso_fraction": 0.30,
            "reorder": _REORDER_RECIPE if reorder else None,
            "hub_vertices": counts[0],
            "torso_vertices": counts[1],
            "tail_vertices": counts[2],
        },
    )


def _peak_rss_bytes() -> Optional[int]:
    """Process peak RSS in bytes, or ``None`` when unavailable."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    rss = int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
    # ru_maxrss is kilobytes on Linux, bytes on macOS.
    return rss if sys.platform == "darwin" else rss * 1024


def _make_spool(store: Optional[TraceStore], key: Optional[str]) -> str:
    """Create the spool file a streaming generation writes into.

    With a store destination the spool lives *inside the store root*
    (dot-prefixed, ``.tmp``-suffixed) so :meth:`TraceStore.adopt` is a
    same-filesystem rename and a crashed run's leftover matches the
    store's orphan-collection pattern. Without one it goes to the
    system temp directory.
    """
    if store is not None and key is not None:
        store.root.mkdir(parents=True, exist_ok=True)
        fd, spool = tempfile.mkstemp(
            dir=store.root, prefix=f".{key}.", suffix=".tmp.npz"
        )
    else:
        fd, spool = tempfile.mkstemp(prefix="repro-spool.", suffix=".npz")
    os.close(fd)
    return spool


def _generate_bundle(
    graph: CSRGraph,
    algorithm: str,
    num_cores: int,
    chunk_size: Optional[int],
    reorder: bool,
    tracer,
    alg_kwargs: Dict,
    segment_events: Optional[int] = None,
    store: Optional[TraceStore] = None,
    key: Optional[str] = None,
) -> _TraceBundle:
    """Cold path: reorder (optionally) and execute the algorithm.

    With ``segment_events`` set the engine appends into a
    :class:`~repro.ligra.segments.SpoolingTraceBuilder`, so the trace
    is never whole in memory: completed barrier spans stream to a
    segmented archive on disk and the bundle carries the open
    :class:`~repro.ligra.segments.SegmentedTrace` handle instead of an
    in-core trace. The spool file is created by :func:`_make_spool`;
    ownership of it stays on ``bundle.spool_path`` until the caller
    adopts it into the store or it is unlinked here (POSIX keeps the
    open archive handle readable after the unlink).
    """
    work_graph = graph
    if reorder:
        with tracer.span("reorder", cat="run", key="in"):
            work_graph, new_ids = reorder_nth_element(graph, key="in")
        if alg_kwargs.get("source") is not None:
            alg_kwargs = dict(alg_kwargs)
            alg_kwargs["source"] = int(new_ids[alg_kwargs["source"]])

    builder: Union[bool, SpoolingTraceBuilder] = True
    spool = None
    if segment_events is not None:
        spool = _make_spool(store, key)
        builder = SpoolingTraceBuilder(spool, segment_events=segment_events)
    try:
        with tracer.span("trace_generation", cat="run",
                         streamed=spool is not None) as gen_span:
            result: AlgorithmResult = run_algorithm(
                algorithm,
                work_graph,
                num_cores=num_cores,
                chunk_size=chunk_size,
                trace=builder,
                **alg_kwargs,
            )
            trace = None
            segments = None
            if isinstance(builder, SpoolingTraceBuilder):
                segments = builder.finalize(
                    regions=tuple(result.engine.space.regions)
                )
            else:
                trace = result.trace
            source = trace if trace is not None else segments
            gen_span.annotate(
                events=source.num_events, trace_bytes=source.nbytes
            )
    except Exception:  # repro: noqa[EXC001] -- cleanup-and-reraise: abort the spool on any failure, then propagate it unchanged
        if isinstance(builder, SpoolingTraceBuilder):
            builder.abort()
        if spool is not None:
            try:
                os.unlink(spool)
            except OSError:
                pass
        raise
    _LOG.info(
        "trace generated%s: %d events, %.2f MiB",
        " (streamed)" if segments is not None else "",
        source.num_events, source.nbytes / (1024 * 1024),
    )
    vtx_ranges = [
        (p.start_addr, p.region.end) for p in result.engine.vtx_props
    ]
    return _TraceBundle(
        trace=trace,
        vtx_ranges=vtx_ranges,
        bytes_per_vertex=result.engine.vtxprop_bytes_per_vertex(),
        num_vertices=work_graph.num_vertices,
        num_edges=work_graph.num_edges,
        segments=segments,
        segment_events=segment_events,
        spool_path=spool,
    )


def _bundle_meta(
    graph: CSRGraph,
    algorithm: str,
    num_cores: int,
    chunk_size: Optional[int],
    reorder: bool,
    bundle: _TraceBundle,
) -> Dict:
    """The JSON sidecar a stored trace carries next to its archive."""
    return {
        "algorithm": algorithm,
        "graph_fingerprint": graph.fingerprint(),
        "num_cores": int(num_cores),
        "chunk_size": (
            None if chunk_size is None else int(chunk_size)
        ),
        "reorder": _REORDER_RECIPE if reorder else None,
        "num_events": bundle.num_events,
        "trace_nbytes": bundle.nbytes,
        "vtx_ranges": [list(r) for r in bundle.vtx_ranges],
        "bytes_per_vertex": bundle.bytes_per_vertex,
        "num_vertices": bundle.num_vertices,
        "num_edges": bundle.num_edges,
    }


def _prepare_trace(
    graph: CSRGraph,
    algorithm: str,
    num_cores: int,
    chunk_size: Optional[int],
    reorder: bool,
    store: Optional[TraceStore],
    tracer,
    alg_kwargs: Dict,
    segment_events: Optional[int] = None,
) -> _TraceBundle:
    """Load the trace bundle from the store, or generate and cache it.

    With ``segment_events`` set every path stays out-of-core: a warm
    hit opens the stored segmented archive for streaming
    (:meth:`TraceStore.open_segments`) instead of rehydrating it, and
    a cold run spools through
    :class:`~repro.ligra.segments.SpoolingTraceBuilder` and donates the
    finished archive to the store via :meth:`TraceStore.adopt` — the
    whole trace is never resident.
    """
    key = None
    if store is not None:
        key = trace_key(
            graph,
            algorithm,
            num_cores=num_cores,
            chunk_size=chunk_size,
            reorder=_REORDER_RECIPE if reorder else None,
            alg_kwargs=alg_kwargs,
        )
        if key is None:
            _LOG.debug(
                "trace store: kwargs not canonicalizable; bypassing cache"
            )
    if key is not None:
        with tracer.span("trace_store.load", cat="run", key=key,
                         streamed=segment_events is not None):
            entry = (
                store.open_segments(key) if segment_events is not None
                else store.load(key)
            )
        if entry is not None:
            source, meta = entry
            _LOG.info(
                "trace store hit: %s (%d events%s)", key, source.num_events,
                ", streamed" if segment_events is not None else "",
            )
            return _TraceBundle(
                trace=None if segment_events is not None else source,
                vtx_ranges=[
                    (int(lo), int(hi)) for lo, hi in meta["vtx_ranges"]
                ],
                bytes_per_vertex=int(meta["bytes_per_vertex"]),
                num_vertices=int(meta["num_vertices"]),
                num_edges=int(meta["num_edges"]),
                cache_enabled=True,
                cache_hit=True,
                cache_key=key,
                segments=source if segment_events is not None else None,
                segment_events=segment_events,
            )
        _LOG.info("trace store miss: %s", key)
    bundle = _generate_bundle(
        graph, algorithm, num_cores, chunk_size, reorder, tracer,
        alg_kwargs, segment_events=segment_events, store=store, key=key,
    )
    if key is not None:
        meta = _bundle_meta(
            graph, algorithm, num_cores, chunk_size, reorder, bundle
        )
        with tracer.span("trace_store.store", cat="run", key=key,
                         streamed=bundle.segments is not None):
            if bundle.segments is not None:
                # The archive is already on disk next to the store:
                # rename it into place. The bundle's open handle keeps
                # reading the same inode after the rename.
                store.adopt(key, bundle.spool_path, meta)
                bundle.spool_path = None
            else:
                store.store(key, bundle.trace, meta)
        bundle.cache_enabled = True
        bundle.cache_key = key
    elif bundle.spool_path is not None:
        # No store destination: drop the directory entry now and keep
        # streaming from the open handle (the inode lives until the
        # bundle's cleanup closes it).
        try:
            os.unlink(bundle.spool_path)
        except OSError:  # pragma: no cover - non-POSIX semantics
            pass
        else:
            bundle.spool_path = None
    return bundle


def _make_hierarchy(
    bundle: _TraceBundle,
    algorithm: str,
    config: SimConfig,
    backend_name: str,
    backend_cls,
    chunk_size: Optional[int],
    sp_chunk_size: Optional[int],
    pim,
):
    """Construct the hierarchy backend for one prepared trace.

    Sizes the scratchpad mapping from the trace's vtxProp footprint and
    compiles PISC microcode where the backend uses it. Shared between
    the real replay (:func:`_replay_bundle`) and the analytic
    estimator (:func:`estimate_system`) so both see the exact same
    machine. Returns ``(hierarchy, hot_capacity)``.
    """
    hot_capacity = 0
    mapping = None
    if backend_name in _HOT_SET_BACKENDS:
        sp_bytes = config.scratchpad_total_bytes
        if backend_name == "locked" and not sp_bytes:
            # The locked region repurposes half the on-chip
            # storage, exactly like OMEGA's scratchpads.
            sp_bytes = config.total_onchip_bytes // 2
        hot_capacity = hot_capacity_for(
            sp_bytes,
            bundle.bytes_per_vertex,
            bundle.num_vertices,
        )
        if backend_name != "dynamic":
            mapping = ScratchpadMapping(
                num_cores=config.core.num_cores,
                hot_capacity=hot_capacity,
                chunk_size=(
                    sp_chunk_size if sp_chunk_size is not None
                    else chunk_size
                ),
            )

    microcode = None
    if backend_name in ("omega", "dynamic") and config.use_pisc:
        microcode = microcode_for_algorithm(algorithm)

    if backend_name == "baseline":
        hierarchy = BaselineBackend(
            config, dram_random_ranges=bundle.vtx_ranges
        )
    elif backend_name == "omega":
        hierarchy = OmegaBackend(
            config, mapping, microcode,
            dram_random_ranges=bundle.vtx_ranges,
        )
    elif backend_name == "locked":
        hierarchy = LockedCacheBackend(config, mapping)
    elif backend_name == "graphpim":
        hierarchy = GraphPimBackend(config, pim)
    elif backend_name == "dynamic":
        hierarchy = DynamicScratchpadBackend(
            config, hot_capacity, microcode
        )
    else:
        # Extension backends take just the config.
        hierarchy = backend_cls(config)
    return hierarchy, hot_capacity


def _replay_bundle(
    bundle: _TraceBundle,
    algorithm: str,
    config: SimConfig,
    backend_name: str,
    backend_cls,
    dataset: str,
    chunk_size: Optional[int],
    sp_chunk_size: Optional[int],
    energy_model: Optional[EnergyModel],
    pim,
    sampler: Optional[ReplaySampler],
    tracer,
    attribution_acc: Optional[AttributionAccumulator] = None,
    scalar_cache: Optional[bool] = None,
) -> SimReport:
    """Replay a prepared trace through one backend and build the report."""
    with tracer.span("prepare_backend", cat="run", backend=backend_name):
        hierarchy, hot_capacity = _make_hierarchy(
            bundle, algorithm, config, backend_name, backend_cls,
            chunk_size, sp_chunk_size, pim,
        )
    # Thread the context's scalar-cache flag onto the backend instance
    # so the replay driver never consults ambient state on the hot
    # path (None = no context; the cache system then falls back to
    # the deprecated env veneer).
    hierarchy.scalar_cache = scalar_cache

    replay_start = time.perf_counter()
    if bundle.segments is not None:
        output = hierarchy.replay_segments(
            bundle.segments, sampler=sampler, attribution=attribution_acc
        )
    else:
        output = hierarchy.replay(
            bundle.trace, sampler=sampler, attribution=attribution_acc
        )
    replay_seconds = time.perf_counter() - replay_start
    attribution_block = None
    if attribution_acc is not None:
        # The conservation invariant is load-bearing: a mismatch means
        # the attribution (or the accounting it mirrors) miscounted.
        attribution_acc.verify(output.stats, bundle.num_events)
        attribution_block = attribution_acc.result()
        if tracer.enabled:
            per_class = attribution_acc.per_class()
            for fld in ATTRIBUTION_FIELDS:
                tracer.counter(
                    f"attribution.{fld}",
                    {name: per_class[name][fld] for name in per_class},
                )
    with tracer.span("timing_energy", cat="run"):
        timing = compute_timing(output, config)
        model = energy_model or EnergyModel()
        energy = model.breakdown(output.stats)

    n = bundle.num_vertices
    report = SimReport(
        system=_BACKEND_LABELS.get(backend_name, config.name),
        algorithm=algorithm,
        dataset=dataset,
        config=config,
        stats=output.stats,
        timing=timing,
        energy=energy,
        replay=output,
        hot_capacity=hot_capacity,
        hot_fraction=hot_capacity / n if n else 0.0,
        num_vertices=n,
        num_edges=bundle.num_edges,
        trace_events=bundle.num_events,
        trace_bytes=bundle.nbytes,
        backend=backend_name,
        replay_seconds=replay_seconds,
        trace_cache=bundle.cache_info(),
        segment_events=bundle.segment_events,
        num_segments=output.num_segments,
        streamed=bundle.segments is not None,
        peak_rss_bytes=_peak_rss_bytes(),
        attribution=attribution_block,
    )
    _LOG.info(
        "run complete: %.0f cycles, bottleneck=%s, replay %.3fs",
        timing.total_cycles, timing.bottleneck, replay_seconds,
    )
    return report


def _pin_source(graph: CSRGraph, algorithm: str, alg_kwargs: Dict) -> None:
    """Pin traversal roots to a *logical* vertex before any relabeling,
    so runs with and without reordering traverse the same workload."""
    if algorithm in ("bfs", "sssp", "bc") and alg_kwargs.get("source") is None:
        alg_kwargs["source"] = default_source(graph)


def _merge_request(
    request: Optional[RunRequest],
    algorithm: Optional[str],
    alg_kwargs: Dict,
) -> Optional[RunRequest]:
    """Validate the request-vs-legacy-kwargs split for the drivers.

    A driver call supplies the workload either through ``request=`` or
    through the legacy positional/keyword arguments — mixing the two
    would make precedence ambiguous, so it raises.
    """
    if request is None:
        if algorithm is None:
            raise SimulationError(
                "an algorithm is required (positionally or via request=)"
            )
        return None
    if algorithm is not None or alg_kwargs:
        raise SimulationError(
            "pass the workload either via request= or via the legacy"
            " arguments, not both"
        )
    return request


def run_system(
    graph: CSRGraph,
    algorithm: Optional[str] = None,
    config: Optional[SimConfig] = None,
    dataset: str = "",
    chunk_size: Optional[int] = DEFAULT_CHUNK_SIZE,
    sp_chunk_size: Optional[int] = None,
    reorder: Optional[bool] = None,
    energy_model: Optional[EnergyModel] = None,
    backend: Optional[str] = None,
    pim=None,
    manifest_path=None,
    trace_path=None,
    timeline_path=None,
    obs_window: Optional[int] = None,
    cache=None,
    segment_events: Optional[int] = None,
    attribution: Optional[bool] = None,
    attribution_path=None,
    ledger_path=None,
    request: Optional[RunRequest] = None,
    context: Optional[RunContext] = None,
    **alg_kwargs,
) -> SimReport:
    """Run one algorithm on one graph through one system configuration.

    The modern calling convention is two values:
    ``run_system(graph, request=RunRequest(...), context=RunContext(...))``
    — the request describes *what* to run (workload, backend, output
    paths) and the context *with which surroundings* (store, segment
    size, attribution, ledger, scalar flag, obs sinks). The legacy
    keyword arguments below remain as a thin compatibility shim and
    cannot be mixed with ``request=``. When ``context`` is omitted it
    is built once via :meth:`repro.core.context.RunContext.from_env`,
    folding the explicit ``cache``/``segment_events``/``attribution``/
    ``ledger_path`` arguments with the ``REPRO_*`` environment exactly
    as before; when a ``context`` is given it is authoritative for all
    of those (the legacy arguments are ignored) and no environment
    variable is consulted anywhere in the run.

    Parameters
    ----------
    graph:
        Input graph (in its original vertex order).
    algorithm:
        Registered algorithm name (see :mod:`repro.algorithms.registry`).
    config:
        System description. When ``backend`` is not given it is
        inferred from the config: ``config.use_scratchpad`` selects the
        OMEGA hierarchy, otherwise the baseline CMP.
    dataset:
        Label recorded in the report.
    chunk_size:
        OpenMP static-schedule chunk for the engine.
    sp_chunk_size:
        Scratchpad-mapping chunk; defaults to ``chunk_size`` (the
        matched configuration of Section V-D). Pass a different value
        to reproduce the mismatch experiment.
    reorder:
        Apply nth-element in-degree reordering before running.
        Defaults per backend: ``True`` for OMEGA and the locked cache
        (their required preprocessing), ``False`` for the baseline,
        GraphPIM and the dynamic scratchpad (which run the original
        ordering).
    energy_model:
        Energy constants; defaults to :class:`EnergyModel`.
    backend:
        Registered hierarchy-backend name (``baseline``, ``omega``,
        ``locked``, ``graphpim``, ``dynamic``, or any extension
        registered via
        :func:`repro.memsim.engine.register_backend`).
    pim:
        Optional :class:`~repro.memsim.engine.PimConfig` for the
        ``graphpim`` backend.
    manifest_path:
        When given, write the run manifest
        (:meth:`~repro.core.report.SimReport.manifest`) as JSON there.
    trace_path:
        When given, record nested phase spans (graph reorder → trace
        generation → per-edgeMap sweeps → replay windows) and write
        them as Chrome trace-event JSON there (viewable in Perfetto).
        A tracer already installed via
        :func:`repro.obs.use_tracer` is reused instead.
    timeline_path:
        When given, sample the replay every ``obs_window`` events and
        write the windowed metrics timeline there (columnar JSON, or
        CSV when the path ends in ``.csv``). The timeline's percentile
        summary is attached to the run manifest either way.
    obs_window:
        Replay sampling window in trace events. ``None`` disables
        sampling unless ``timeline_path`` is given; 0 auto-sizes for
        about 64 windows.
    cache:
        Trace-store selector (see :func:`repro.store.resolve_store`):
        ``None``/``True`` use the ambient store (``REPRO_CACHE_DIR``
        or an installed :func:`repro.store.set_store`), ``False``
        bypasses caching, a path or :class:`~repro.store.TraceStore`
        selects a store explicitly. A warm hit skips reorder and
        algorithm execution and yields bit-identical simulated
        counters.
    segment_events:
        Out-of-core streaming segment size, in trace events. When set
        (or when the ``REPRO_SEGMENT_EVENTS`` environment variable
        holds a positive integer) the whole pipeline runs with bounded
        resident memory: generation spools completed barrier spans to
        a segmented archive, a warm store hit streams segments without
        rehydrating the trace, and replay consumes one segment at a
        time. Simulated counters are bit-identical to the in-core run;
        ``None`` or a non-positive value keeps the default whole-trace
        path.
    attribution:
        Fold per-class traffic attribution during the replay: every
        event resolves to its graph entity (vertex properties by degree
        stratum, CSR offsets/edges, frontier) and the per-class
        counters — conserved bit-identically against the aggregate
        ``MemStats`` — land in the manifest's ``attribution`` block and
        (when tracing) as Perfetto counter tracks. Defaults to the
        ``REPRO_ATTRIBUTION`` environment variable.
    attribution_path:
        When given, write the attribution block as standalone JSON
        there (implies ``attribution=True`` unless explicitly
        disabled).
    ledger_path:
        When given (or when the ``REPRO_LEDGER`` environment variable
        names a file), append one run-ledger entry — the manifest keyed
        by trace-store key, config hash, and git revision — to that
        JSONL file after the run (see :mod:`repro.obs.ledger` and
        ``repro history``).
    alg_kwargs:
        Extra arguments for the algorithm runner (source vertex, etc.).
    request:
        A :class:`~repro.core.context.RunRequest` carrying the
        workload description instead of the legacy arguments above.
    context:
        A :class:`~repro.core.context.RunContext` carrying the run's
        ambient configuration explicitly. When given, the run is fully
        stateless with respect to process globals and environment.
    """
    request = _merge_request(request, algorithm, alg_kwargs)
    num_cores_hint = 16
    if request is not None:
        algorithm = request.algorithm
        dataset = request.dataset or dataset
        backend = request.backend if request.backend is not None else backend
        chunk_size = request.chunk_size
        sp_chunk_size = request.sp_chunk_size
        reorder = request.reorder
        num_cores_hint = request.num_cores
        manifest_path = request.manifest_path
        trace_path = request.trace_path
        timeline_path = request.timeline_path
        obs_window = request.obs_window
        attribution_path = request.attribution_path
        alg_kwargs = dict(request.alg_kwargs)
    if config is None:
        backend_name = backend or "omega"
        config = default_backend_config(
            backend_name, num_cores=num_cores_hint
        )
    else:
        backend_name = backend or (
            "omega" if config.use_scratchpad else "baseline"
        )
    backend_cls = get_backend(backend_name)  # validates the name
    if reorder is None:
        reorder = _REORDER_DEFAULT.get(backend_name, config.use_scratchpad)
    _pin_source(graph, algorithm, alg_kwargs)
    if context is None:
        context = RunContext.from_env(
            cache=cache,
            segment_events=segment_events,
            attribution=attribution,
            attribution_path=attribution_path,
            ledger_path=ledger_path,
        )
    store = context.store
    segment_events = context.segment_events
    want_attribution = context.attribution
    ledger_path = context.ledger_path

    # Observability setup: use the context's sink, else the thread's
    # installed tracer, or spin up a private one when a trace file was
    # requested; sample the replay when a timeline file or an explicit
    # window was requested.
    tracer = context.tracer if context.tracer is not None else get_tracer()
    if trace_path is not None and not tracer.enabled:
        tracer = SpanTracer()
    registry = (
        context.metrics if context.metrics is not None else get_registry()
    )
    sampler = None
    if timeline_path is not None or obs_window is not None:
        sampler = ReplaySampler(obs_window or 0)
    _LOG.info(
        "run_system: algorithm=%s dataset=%s backend=%s cores=%d",
        algorithm, dataset or "?", backend_name, config.core.num_cores,
    )

    with use_tracer(tracer), use_registry(registry), tracer.span(
        "run_system", cat="run", algorithm=algorithm, dataset=dataset,
        backend=backend_name,
    ):
        bundle = _prepare_trace(
            graph, algorithm, config.core.num_cores, chunk_size, reorder,
            store, tracer, alg_kwargs, segment_events=segment_events,
        )
        try:
            attribution_acc = None
            if want_attribution:
                with tracer.span("attribution_spec", cat="run"):
                    attribution_acc = AttributionAccumulator(
                        _attribution_spec(graph, bundle, reorder)
                    )
            report = _replay_bundle(
                bundle, algorithm, config, backend_name, backend_cls,
                dataset, chunk_size, sp_chunk_size, energy_model, pim,
                sampler, tracer, attribution_acc=attribution_acc,
                scalar_cache=context.scalar_cache,
            )
        finally:
            bundle.cleanup()

    if sampler is not None:
        report.timeline = sampler.timeline()
        if registry.enabled:
            report.timeline.metrics = registry.snapshot()

    if trace_path is not None:
        tracer.export_chrome(trace_path)
        _LOG.info("wrote Chrome trace to %s", trace_path)
    if timeline_path is not None and report.timeline is not None:
        report.timeline.save(timeline_path)
        _LOG.info(
            "wrote %d-window timeline to %s",
            report.timeline.num_windows, timeline_path,
        )
    if attribution_path is not None and report.attribution is not None:
        import json

        parent = os.path.dirname(os.fspath(attribution_path))
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(attribution_path, "w") as f:
            json.dump(report.attribution, f, indent=2, sort_keys=True)
        _LOG.info("wrote attribution breakdown to %s", attribution_path)
    if manifest_path is not None:
        report.save_manifest(manifest_path)
    if ledger_path is not None:
        append_entry(ledger_path, make_entry(report.manifest(), kind="run"))
        _LOG.info("appended run-ledger entry to %s", ledger_path)
    return report


def estimate_system(
    graph: CSRGraph,
    algorithm: Optional[str] = None,
    config: Optional[SimConfig] = None,
    dataset: str = "",
    chunk_size: Optional[int] = DEFAULT_CHUNK_SIZE,
    sp_chunk_size: Optional[int] = None,
    reorder: Optional[bool] = None,
    backend: Optional[str] = None,
    pim=None,
    cache=None,
    request: Optional[RunRequest] = None,
    context: Optional[RunContext] = None,
    **alg_kwargs,
) -> "ReplayEstimate":
    """Predict a run's headline counters without replaying it.

    The trace-preparation stages are identical to :func:`run_system`
    (same store keys, same reorder defaults, same hierarchy sizing),
    but the replay is replaced by the closed-form model of
    :func:`repro.memsim.estimate.estimate_replay`: exact route shares,
    reuse-gap cache predictions, no stateful kernel. Used by
    ``repro sweep --estimate-prune`` to skip configurations whose
    predicted metrics fall outside the band of interest.

    Always runs in-core (the estimator needs the whole interleaved
    trace resident); out-of-core streaming does not apply here.
    Accepts ``request=``/``context=`` exactly like :func:`run_system`.
    Returns the :class:`~repro.memsim.estimate.ReplayEstimate`.
    """
    request = _merge_request(request, algorithm, alg_kwargs)
    num_cores_hint = 16
    if request is not None:
        algorithm = request.algorithm
        dataset = request.dataset or dataset
        backend = request.backend if request.backend is not None else backend
        chunk_size = request.chunk_size
        sp_chunk_size = request.sp_chunk_size
        reorder = request.reorder
        num_cores_hint = request.num_cores
        alg_kwargs = dict(request.alg_kwargs)
    if config is None:
        backend_name = backend or "omega"
        config = default_backend_config(
            backend_name, num_cores=num_cores_hint
        )
    else:
        backend_name = backend or (
            "omega" if config.use_scratchpad else "baseline"
        )
    backend_cls = get_backend(backend_name)
    if reorder is None:
        reorder = _REORDER_DEFAULT.get(backend_name, config.use_scratchpad)
    _pin_source(graph, algorithm, alg_kwargs)
    if context is None:
        context = RunContext.from_env(cache=cache)
    store = context.store
    tracer = context.tracer if context.tracer is not None else get_tracer()
    _LOG.info(
        "estimate_system: algorithm=%s dataset=%s backend=%s cores=%d",
        algorithm, dataset or "?", backend_name, config.core.num_cores,
    )
    bundle = _prepare_trace(
        graph, algorithm, config.core.num_cores, chunk_size, reorder,
        store, tracer, alg_kwargs,
    )
    try:
        hierarchy, _ = _make_hierarchy(
            bundle, algorithm, config, backend_name, backend_cls,
            chunk_size, sp_chunk_size, pim,
        )
        hierarchy.scalar_cache = context.scalar_cache
        with tracer.span("estimate", cat="run", backend=backend_name,
                         events=bundle.num_events):
            return estimate_replay(hierarchy, bundle.trace)
    finally:
        bundle.cleanup()


def run_backends(
    graph: CSRGraph,
    algorithm: Optional[str] = None,
    backends: Sequence[str] = (),
    configs: Optional[Dict[str, SimConfig]] = None,
    dataset: str = "",
    num_cores: int = 16,
    chunk_size: Optional[int] = DEFAULT_CHUNK_SIZE,
    sp_chunk_size: Optional[int] = None,
    reorder: Optional[bool] = None,
    energy_model: Optional[EnergyModel] = None,
    pim=None,
    cache=None,
    request: Optional[RunRequest] = None,
    context: Optional[RunContext] = None,
    **alg_kwargs,
) -> Dict[str, SimReport]:
    """Replay one workload through several backends, sharing traces.

    The memory trace depends on the graph, algorithm, kwargs, core
    count, chunk size and reorder recipe — *not* on the hierarchy that
    replays it — so each distinct trace is generated (or loaded from
    the trace store) exactly once and every backend that needs it
    replays the same in-memory arrays. With the paper's defaults that
    means two generations (original order for baseline/GraphPIM/
    dynamic, reordered for OMEGA/locked) regardless of how many
    backends run.

    Parameters mirror :func:`run_system`; ``configs`` optionally maps a
    backend name to its :class:`SimConfig` (defaults per backend via
    :func:`default_backend_config` with ``num_cores``). Returns an
    ordered ``{backend name: SimReport}`` in the order requested.

    Like :func:`run_system`, the workload may arrive as a
    :class:`~repro.core.context.RunRequest` (``request=``) and ambient
    state as an explicit :class:`~repro.core.context.RunContext`
    (``context=``); a ``request.backend`` here is ignored — ``backends``
    names the set to sweep.
    """
    request = _merge_request(request, algorithm, alg_kwargs)
    if request is not None:
        algorithm = request.algorithm
        dataset = request.dataset or dataset
        chunk_size = request.chunk_size
        sp_chunk_size = request.sp_chunk_size
        reorder = request.reorder
        num_cores = request.num_cores
        alg_kwargs = dict(request.alg_kwargs)
    if not backends:
        raise SimulationError("run_backends needs at least one backend name")
    configs = dict(configs or {})
    resolved: Dict[str, SimConfig] = {}
    for name in backends:
        get_backend(name)  # validates
        resolved[name] = configs.get(name) or default_backend_config(
            name, num_cores=num_cores
        )
    _pin_source(graph, algorithm, alg_kwargs)
    if context is None:
        context = RunContext.from_env(cache=cache)
    store = context.store
    tracer = context.tracer if context.tracer is not None else get_tracer()

    bundles: Dict[Tuple, _TraceBundle] = {}
    reports: Dict[str, SimReport] = {}
    with tracer.span(
        "run_backends", cat="run", algorithm=algorithm, dataset=dataset,
        backends=",".join(backends),
    ):
        for name in backends:
            config = resolved[name]
            do_reorder = (
                reorder if reorder is not None
                else _REORDER_DEFAULT.get(name, config.use_scratchpad)
            )
            signature = (
                bool(do_reorder), config.core.num_cores, chunk_size,
            )
            bundle = bundles.get(signature)
            if bundle is None:
                bundle = _prepare_trace(
                    graph, algorithm, config.core.num_cores, chunk_size,
                    do_reorder, store, tracer, alg_kwargs,
                )
                bundles[signature] = bundle
            reports[name] = _replay_bundle(
                bundle, algorithm, config, name, get_backend(name), dataset,
                chunk_size, sp_chunk_size, energy_model, pim, None, tracer,
                scalar_cache=context.scalar_cache,
            )
    return reports


def run_locked_cache(
    graph: CSRGraph,
    algorithm: str,
    config: Optional[SimConfig] = None,
    dataset: str = "",
    chunk_size: Optional[int] = DEFAULT_CHUNK_SIZE,
    energy_model: Optional[EnergyModel] = None,
    **alg_kwargs,
) -> SimReport:
    """Run the Section IX locked-cache alternative.

    Thin alias for ``run_system(..., backend="locked")``. The default
    config is the scaled-OMEGA storage split (halved L2 — the other
    half is the locked region) with PISCs disabled, keeping the
    total-on-chip-storage comparison fair.
    """
    if config is None:
        config = SimConfig.scaled_omega(
            use_pisc=False, use_source_buffer=False
        )
    return run_system(
        graph, algorithm, config, dataset=dataset, chunk_size=chunk_size,
        energy_model=energy_model, backend="locked", **alg_kwargs,
    )


def run_graphpim(
    graph: CSRGraph,
    algorithm: str,
    config: Optional[SimConfig] = None,
    dataset: str = "",
    chunk_size: Optional[int] = DEFAULT_CHUNK_SIZE,
    energy_model: Optional[EnergyModel] = None,
    pim=None,
    **alg_kwargs,
) -> SimReport:
    """Run the GraphPIM-style comparator (atomics offloaded off-chip).

    Thin alias for ``run_system(..., backend="graphpim")``. Uses the
    baseline's full cache hierarchy (GraphPIM repurposes no storage)
    and runs on the *original* vertex order (it needs no popularity
    preprocessing).
    """
    if config is None:
        config = SimConfig.scaled_baseline()
    return run_system(
        graph, algorithm, config, dataset=dataset, chunk_size=chunk_size,
        energy_model=energy_model, backend="graphpim", pim=pim, **alg_kwargs,
    )


def compare_systems(
    graph: CSRGraph,
    algorithm: str,
    baseline_config: Optional[SimConfig] = None,
    omega_config: Optional[SimConfig] = None,
    dataset: str = "",
    **kwargs,
) -> Comparison:
    """Run baseline and OMEGA on the same workload; return the ratios.

    Defaults to the scaled Table III configurations with equal total
    on-chip storage (the paper's "same-sized" comparison). A thin
    wrapper over :func:`run_backends`, so the two runs share the trace
    store and any extra ``kwargs`` (chunk size, algorithm arguments).
    """
    baseline_config = baseline_config or SimConfig.scaled_baseline()
    omega_config = omega_config or SimConfig.scaled_omega()
    if baseline_config.use_scratchpad:
        raise SimulationError("baseline_config must not use scratchpads")
    if not omega_config.use_scratchpad:
        raise SimulationError("omega_config must use scratchpads")
    reports = run_backends(
        graph,
        algorithm,
        ("baseline", "omega"),
        configs={"baseline": baseline_config, "omega": omega_config},
        dataset=dataset,
        **kwargs,
    )
    return Comparison(baseline=reports["baseline"], omega=reports["omega"])
