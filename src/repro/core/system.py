"""Full-system drivers: run an algorithm on a graph through a hierarchy.

This is the library's main entry point. :func:`run_system` executes one
(algorithm, graph, configuration) triple end-to-end:

1. optionally reorder the graph by popularity (OMEGA's offline
   preprocessing, Section VI — nth-element in-degree by default),
2. run the algorithm over the Ligra engine, collecting the memory
   trace,
3. size the scratchpad mapping from the algorithm's vtxProp footprint
   (Section V-A: one line holds all of a vertex's entries plus the
   active bit) and compile the algorithm's update function to PISC
   microcode (Section V-F),
4. replay the trace through the baseline or OMEGA hierarchy, and
5. fold the counters into timing and energy.

:func:`compare_systems` runs both systems on the same workload and
returns the paper's headline ratios (speedup, traffic reduction, DRAM
bandwidth improvement, energy saving).
"""

from __future__ import annotations

from typing import Optional

from repro.config import SimConfig
from repro.errors import SimulationError
from repro.graph.csr import CSRGraph
from repro.graph.reorder import reorder_nth_element
from repro.algorithms.common import AlgorithmResult, default_source
from repro.algorithms.registry import run_algorithm
from repro.core.offload import microcode_for_algorithm
from repro.core.report import Comparison, SimReport
from repro.memsim.core_model import compute_timing
from repro.memsim.energy import EnergyModel
from repro.memsim.hierarchy import BaselineHierarchy, OmegaHierarchy
from repro.memsim.mapping import ScratchpadMapping
from repro.memsim.scratchpad import hot_capacity_for

__all__ = [
    "run_system",
    "compare_systems",
    "run_locked_cache",
    "run_graphpim",
    "DEFAULT_CHUNK_SIZE",
]

#: Default OpenMP-schedule chunk (and matching scratchpad-mapping chunk).
DEFAULT_CHUNK_SIZE = 32


def run_system(
    graph: CSRGraph,
    algorithm: str,
    config: SimConfig,
    dataset: str = "",
    chunk_size: Optional[int] = DEFAULT_CHUNK_SIZE,
    sp_chunk_size: Optional[int] = None,
    reorder: Optional[bool] = None,
    energy_model: Optional[EnergyModel] = None,
    **alg_kwargs,
) -> SimReport:
    """Run one algorithm on one graph through one system configuration.

    Parameters
    ----------
    graph:
        Input graph (in its original vertex order).
    algorithm:
        Registered algorithm name (see :mod:`repro.algorithms.registry`).
    config:
        System description; ``config.use_scratchpad`` selects the
        OMEGA hierarchy, otherwise the baseline CMP.
    dataset:
        Label recorded in the report.
    chunk_size:
        OpenMP static-schedule chunk for the engine.
    sp_chunk_size:
        Scratchpad-mapping chunk; defaults to ``chunk_size`` (the
        matched configuration of Section V-D). Pass a different value
        to reproduce the mismatch experiment.
    reorder:
        Apply nth-element in-degree reordering before running. Default:
        ``True`` for OMEGA (its required preprocessing), ``False`` for
        the baseline (the paper's baseline runs the original ordering).
    energy_model:
        Energy constants; defaults to :class:`EnergyModel`.
    alg_kwargs:
        Extra arguments for the algorithm runner (source vertex, etc.).
    """
    is_omega = config.use_scratchpad
    if reorder is None:
        reorder = is_omega
    # Pin traversal roots to a *logical* vertex before any relabeling,
    # so baseline and OMEGA runs traverse the same workload.
    if algorithm in ("bfs", "sssp", "bc") and alg_kwargs.get("source") is None:
        alg_kwargs["source"] = default_source(graph)
    work_graph = graph
    if reorder:
        work_graph, new_ids = reorder_nth_element(graph, key="in")
        if "source" in alg_kwargs and alg_kwargs["source"] is not None:
            alg_kwargs["source"] = int(new_ids[alg_kwargs["source"]])

    result: AlgorithmResult = run_algorithm(
        algorithm,
        work_graph,
        num_cores=config.core.num_cores,
        chunk_size=chunk_size,
        trace=True,
        **alg_kwargs,
    )
    trace = result.trace
    # vtxProp address ranges: the spatially-random regions the hybrid
    # DRAM page policy serves close-page (Section IX direction 3).
    vtx_ranges = [
        (p.start_addr, p.region.end) for p in result.engine.vtx_props
    ]

    hot_capacity = 0
    if is_omega:
        bytes_per_vertex = result.engine.vtxprop_bytes_per_vertex()
        hot_capacity = hot_capacity_for(
            config.scratchpad_total_bytes,
            bytes_per_vertex,
            work_graph.num_vertices,
        )
        mapping = ScratchpadMapping(
            num_cores=config.core.num_cores,
            hot_capacity=hot_capacity,
            chunk_size=sp_chunk_size if sp_chunk_size is not None else chunk_size,
        )
        microcode = microcode_for_algorithm(algorithm) if config.use_pisc else None
        hierarchy = OmegaHierarchy(
            config, mapping, microcode, dram_random_ranges=vtx_ranges
        )
    else:
        hierarchy = BaselineHierarchy(config, dram_random_ranges=vtx_ranges)

    output = hierarchy.replay(trace)
    timing = compute_timing(output, config)
    model = energy_model or EnergyModel()
    energy = model.breakdown(output.stats)

    n = work_graph.num_vertices
    return SimReport(
        system=config.name,
        algorithm=algorithm,
        dataset=dataset,
        config=config,
        stats=output.stats,
        timing=timing,
        energy=energy,
        replay=output,
        hot_capacity=hot_capacity,
        hot_fraction=hot_capacity / n if n else 0.0,
        num_vertices=n,
        num_edges=work_graph.num_edges,
        trace_events=trace.num_events,
    )


def run_locked_cache(
    graph: CSRGraph,
    algorithm: str,
    config: Optional[SimConfig] = None,
    dataset: str = "",
    chunk_size: Optional[int] = DEFAULT_CHUNK_SIZE,
    energy_model: Optional[EnergyModel] = None,
    **alg_kwargs,
) -> SimReport:
    """Run the Section IX locked-cache alternative.

    Hot vertices (the same popularity partition OMEGA uses) are pinned
    in the shared L2; everything else behaves like the baseline. The
    default config is the scaled-OMEGA storage split (halved L2 — the
    other half is the locked region) with PISCs disabled, keeping the
    total-on-chip-storage comparison fair.
    """
    from repro.memsim.alternatives import LockedCacheHierarchy

    if config is None:
        config = SimConfig.scaled_omega(use_pisc=False, use_source_buffer=False)
    if algorithm in ("bfs", "sssp", "bc") and alg_kwargs.get("source") is None:
        alg_kwargs["source"] = default_source(graph)
    work_graph, new_ids = reorder_nth_element(graph, key="in")
    if "source" in alg_kwargs and alg_kwargs["source"] is not None:
        alg_kwargs["source"] = int(new_ids[alg_kwargs["source"]])
    result = run_algorithm(
        algorithm, work_graph, num_cores=config.core.num_cores,
        chunk_size=chunk_size, trace=True, **alg_kwargs,
    )
    # The locked region is sized exactly like OMEGA's scratchpads.
    hot_capacity = hot_capacity_for(
        config.scratchpad_total_bytes or config.total_onchip_bytes // 2,
        result.engine.vtxprop_bytes_per_vertex(),
        work_graph.num_vertices,
    )
    mapping = ScratchpadMapping(
        config.core.num_cores, hot_capacity, chunk_size=chunk_size
    )
    output = LockedCacheHierarchy(config, mapping).replay(result.trace)
    timing = compute_timing(output, config)
    model = energy_model or EnergyModel()
    n = work_graph.num_vertices
    return SimReport(
        system="locked-cache",
        algorithm=algorithm,
        dataset=dataset,
        config=config,
        stats=output.stats,
        timing=timing,
        energy=model.breakdown(output.stats),
        replay=output,
        hot_capacity=hot_capacity,
        hot_fraction=hot_capacity / n if n else 0.0,
        num_vertices=n,
        num_edges=work_graph.num_edges,
        trace_events=result.trace.num_events,
    )


def run_graphpim(
    graph: CSRGraph,
    algorithm: str,
    config: Optional[SimConfig] = None,
    dataset: str = "",
    chunk_size: Optional[int] = DEFAULT_CHUNK_SIZE,
    energy_model: Optional[EnergyModel] = None,
    pim=None,
    **alg_kwargs,
) -> SimReport:
    """Run the GraphPIM-style comparator (atomics offloaded off-chip).

    Uses the baseline's full cache hierarchy (GraphPIM repurposes no
    storage) and runs on the *original* vertex order (it needs no
    popularity preprocessing).
    """
    from repro.memsim.alternatives import PimHierarchy

    if config is None:
        config = SimConfig.scaled_baseline()
    if algorithm in ("bfs", "sssp", "bc") and alg_kwargs.get("source") is None:
        alg_kwargs["source"] = default_source(graph)
    result = run_algorithm(
        algorithm, graph, num_cores=config.core.num_cores,
        chunk_size=chunk_size, trace=True, **alg_kwargs,
    )
    output = PimHierarchy(config, pim).replay(result.trace)
    timing = compute_timing(output, config)
    model = energy_model or EnergyModel()
    return SimReport(
        system="graphpim",
        algorithm=algorithm,
        dataset=dataset,
        config=config,
        stats=output.stats,
        timing=timing,
        energy=model.breakdown(output.stats),
        replay=output,
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        trace_events=result.trace.num_events,
    )


def compare_systems(
    graph: CSRGraph,
    algorithm: str,
    baseline_config: Optional[SimConfig] = None,
    omega_config: Optional[SimConfig] = None,
    dataset: str = "",
    **kwargs,
) -> Comparison:
    """Run baseline and OMEGA on the same workload; return the ratios.

    Defaults to the scaled Table III configurations with equal total
    on-chip storage (the paper's "same-sized" comparison).
    """
    baseline_config = baseline_config or SimConfig.scaled_baseline()
    omega_config = omega_config or SimConfig.scaled_omega()
    if baseline_config.use_scratchpad:
        raise SimulationError("baseline_config must not use scratchpads")
    if not omega_config.use_scratchpad:
        raise SimulationError("omega_config must use scratchpads")
    base = run_system(
        graph, algorithm, baseline_config, dataset=dataset, **kwargs
    )
    omega = run_system(graph, algorithm, omega_config, dataset=dataset, **kwargs)
    return Comparison(baseline=base, omega=omega)
