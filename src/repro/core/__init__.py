"""OMEGA core: full-system drivers, offload compiler, reports, models.

The paper's primary contribution lives here: the machinery that wires
the graph substrate, the Ligra-like engine, and the memory-subsystem
simulator into baseline-vs-OMEGA experiments.
"""

from repro.core.analytic import (
    LARGE_GRAPHS,
    AnalyticResult,
    LargeGraph,
    WorkloadProfile,
    calibrate_zipf_exponent,
    estimate_cycles,
    estimate_speedup,
    zipf_coverage,
)
from repro.core.characterization import (
    AccessProfile,
    access_fraction_to_top,
    measured_algorithm_profile,
    tmam_breakdown,
)
from repro.core.offload import (
    RegisterWrite,
    UpdateSpec,
    compile_update,
    generate_config_code,
    microcode_for_algorithm,
    render_offload_stub,
)
from repro.core.context import RunContext, RunRequest
from repro.core.report import Comparison, SimReport
from repro.core.sliced import SlicedRunReport, run_sliced, slice_plan
from repro.core.system import (
    DEFAULT_CHUNK_SIZE,
    compare_systems,
    estimate_system,
    run_backends,
    run_graphpim,
    run_locked_cache,
    run_system,
)
from repro.memsim.mapping import ScratchpadMapping

__all__ = [
    "LARGE_GRAPHS",
    "AnalyticResult",
    "LargeGraph",
    "WorkloadProfile",
    "calibrate_zipf_exponent",
    "estimate_cycles",
    "estimate_speedup",
    "zipf_coverage",
    "AccessProfile",
    "access_fraction_to_top",
    "measured_algorithm_profile",
    "tmam_breakdown",
    "RegisterWrite",
    "UpdateSpec",
    "compile_update",
    "generate_config_code",
    "microcode_for_algorithm",
    "render_offload_stub",
    "Comparison",
    "RunContext",
    "RunRequest",
    "SimReport",
    "SlicedRunReport",
    "run_sliced",
    "slice_plan",
    "DEFAULT_CHUNK_SIZE",
    "compare_systems",
    "estimate_system",
    "run_backends",
    "run_graphpim",
    "run_locked_cache",
    "run_system",
    "ScratchpadMapping",
]
