"""Workload characterization (paper Section III-IV, Figures 3-5).

Functions that measure the motivating phenomena directly from traces
and reports: the fraction of vtxProp accesses targeting the most
connected vertices (Fig 4b and the Fig 5 heatmap), the TMAM-style
execution-time breakdown (Fig 3), and measured Table II columns
(atomic/random access fractions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.errors import TraceError
from repro.graph.csr import CSRGraph
from repro.graph.degree import TOP_VERTEX_FRACTION
from repro.ligra.trace import AccessClass, FLAG_ATOMIC, Trace, CACHE_LINE_BYTES
from repro.core.report import SimReport

__all__ = [
    "access_fraction_to_top",
    "tmam_breakdown",
    "measured_algorithm_profile",
    "AccessProfile",
]


def access_fraction_to_top(
    trace: Trace,
    graph: CSRGraph,
    fraction: float = TOP_VERTEX_FRACTION,
    key: str = "in",
) -> float:
    """Fraction (%) of vtxProp accesses hitting the top-``fraction``
    most-connected vertices (the Fig 4b / Fig 5 metric).

    ``graph`` must be the same graph (same vertex ids) the trace was
    generated from.
    """
    if not 0.0 < fraction <= 1.0:
        raise TraceError(f"fraction must be in (0, 1], got {fraction}")
    ids = trace.vtxprop_vertex_ids()
    ids = ids[ids >= 0]
    if len(ids) == 0:
        return 0.0
    degrees = graph.in_degrees() if key == "in" else graph.out_degrees()
    n = graph.num_vertices
    k = max(1, int(np.ceil(fraction * n)))
    threshold_order = np.argpartition(-degrees, min(k, n - 1))[:k]
    top = np.zeros(n, dtype=bool)
    top[threshold_order] = True
    return 100.0 * float(top[ids].mean())


def tmam_breakdown(report: SimReport) -> Dict[str, float]:
    """TMAM-style execution breakdown for one run (Fig 3).

    Maps the analytic model's decomposition onto the paper's
    categories: retiring/frontend ≈ compute issue slots, backend-bound
    split into memory-bound (overlapped memory latency + serialized
    stalls) and core-bound (the remainder — zero in this model).
    """
    timing = report.timing
    total = timing.compute_cycles + timing.serial_cycles + timing.memory_cycles
    if total <= 0:
        return {"retiring": 0.0, "memory_bound": 0.0, "core_bound": 0.0}
    memory = (timing.memory_cycles + timing.serial_cycles) / total
    return {
        "retiring": timing.compute_cycles / total,
        "memory_bound": memory,
        "core_bound": max(0.0, 1.0 - memory - timing.compute_cycles / total),
    }


@dataclass(frozen=True)
class AccessProfile:
    """Measured per-class access mix of one algorithm run."""

    total_events: int
    vtxprop_events: int
    edgelist_events: int
    ngraph_events: int
    atomic_events: int
    #: Fraction of vtxProp accesses that are non-sequential (estimated
    #: by address-delta analysis at cache-line granularity).
    random_fraction: float

    @property
    def atomic_fraction(self) -> float:
        """Atomics as a share of all events (Table II '%atomic')."""
        return self.atomic_events / self.total_events if self.total_events else 0.0

    @property
    def vtxprop_fraction(self) -> float:
        """vtxProp events as a share of all events."""
        return self.vtxprop_events / self.total_events if self.total_events else 0.0


def measured_algorithm_profile(trace: Trace) -> AccessProfile:
    """Measure the Table II access-mix columns from a trace."""
    n = trace.num_events
    classes = trace.access_class
    vtx = int((classes == int(AccessClass.VTXPROP)).sum())
    edge = int((classes == int(AccessClass.EDGELIST)).sum())
    ngraph = int((classes == int(AccessClass.NGRAPH)).sum())
    atomics = int(((trace.flags & FLAG_ATOMIC) != 0).sum())

    vmask = classes == int(AccessClass.VTXPROP)
    vaddrs = trace.addr[vmask]
    if len(vaddrs) > 1:
        lines = vaddrs // CACHE_LINE_BYTES
        random_fraction = float((np.abs(np.diff(lines)) > 1).mean())
    else:
        random_fraction = 0.0
    return AccessProfile(
        total_events=n,
        vtxprop_events=vtx,
        edgelist_events=edge,
        ngraph_events=ngraph,
        atomic_events=atomics,
        random_fraction=random_fraction,
    )
