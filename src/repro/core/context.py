"""Explicit run configuration: :class:`RunContext` and :class:`RunRequest`.

Historically every layer of the pipeline resolved its own ambient
state at a different depth: the trace store through process globals
(``set_store``/``use_store``) or ``REPRO_CACHE_DIR``, the streaming
segment size from ``REPRO_SEGMENT_EVENTS``, attribution from
``REPRO_ATTRIBUTION``, the run ledger from ``REPRO_LEDGER``, and the
scalar-cache escape hatch from ``REPRO_SCALAR_CACHE`` — read *inside*
``CacheSystem.__init__`` on the replay hot path. Two concurrent
in-process runs could therefore observe each other's configuration.

This module makes the configuration a value instead of an ambient:

- :class:`RunContext` is a frozen snapshot of everything a run reads
  from its surroundings (store handle, segment size, attribution flag,
  ledger path, scalar-cache flag, obs sinks). Threads can each carry
  their own context; nothing a concurrent run does can change it.
- :meth:`RunContext.from_env` is the **only** place in ``src/repro``
  allowed to read ``REPRO_*`` environment variables (machine-enforced
  by the ENV001 lint rule). The legacy ambient accessors —
  ``repro.store.get_store``, ``repro.obs.ledger.resolve_ledger_path``,
  ``repro.memsim.cachestate.scalar_cache_forced`` — survive as thin
  deprecated veneers that delegate to the ``*_from_env`` helpers here.
- :class:`RunRequest` absorbs :func:`repro.core.system.run_system`'s
  sprawling per-run keyword arguments into one serializable value, so
  a sweep worker or a ``repro serve`` job can carry the complete run
  description across a process or socket boundary.

``set_store(None)`` semantics are preserved explicitly: an installed
ambient store *pins* the resolution (installing ``None`` pins caching
off), and :meth:`RunContext.from_env` honours the pin before falling
back to ``REPRO_CACHE_DIR``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Mapping, Optional, Union

from repro.errors import SimulationError
from repro.obs.ledger import ENV_LEDGER
from repro.store import TraceStore
from repro.store.store import ENV_CACHE_CAPACITY_MB, ENV_CACHE_DIR, installed_store

__all__ = [
    "ENV_SEGMENT_EVENTS",
    "ENV_ATTRIBUTION",
    "ENV_SCALAR_CACHE",
    "RunContext",
    "RunRequest",
    "attribution_from_env",
    "cache_capacity_from_env",
    "ledger_path_from_env",
    "scalar_cache_from_env",
    "segment_events_from_env",
    "store_from_env",
]

#: Environment fallback for the out-of-core streaming segment size: a
#: positive integer turns on streaming for every run in the process.
ENV_SEGMENT_EVENTS = "REPRO_SEGMENT_EVENTS"

#: Environment fallback for per-class traffic attribution: a truthy
#: value ("1", "true", "on", "yes") turns it on for every run.
ENV_ATTRIBUTION = "REPRO_ATTRIBUTION"

#: Environment escape hatch forcing the scalar reference cache oracle
#: (``"1"`` forces it; anything else keeps the batch kernel).
ENV_SCALAR_CACHE = "REPRO_SCALAR_CACHE"

#: Values of :data:`ENV_ATTRIBUTION` that mean "on".
_TRUTHY = ("1", "true", "on", "yes")


def _environ(environ: Optional[Mapping[str, str]]) -> Mapping[str, str]:
    return os.environ if environ is None else environ


def cache_capacity_from_env(
    environ: Optional[Mapping[str, str]] = None,
) -> Optional[int]:
    """``REPRO_CACHE_CAPACITY_MB`` as bytes, or ``None`` when unset."""
    env_mb = _environ(environ).get(ENV_CACHE_CAPACITY_MB)
    if not env_mb:
        return None
    return int(float(env_mb) * 1024 * 1024)


def store_from_env(
    environ: Optional[Mapping[str, str]] = None,
) -> Optional[TraceStore]:
    """The store ``REPRO_CACHE_DIR`` names, or ``None`` (caching off)."""
    root = _environ(environ).get(ENV_CACHE_DIR)
    return TraceStore(root) if root else None


def segment_events_from_env(
    environ: Optional[Mapping[str, str]] = None,
) -> Optional[int]:
    """``REPRO_SEGMENT_EVENTS`` as a positive int, or ``None`` (off).

    Raises :class:`~repro.errors.SimulationError` on a non-integer
    value; 0 and negative values mean off, like an explicit argument.
    """
    env = _environ(environ).get(ENV_SEGMENT_EVENTS)
    if not env:
        return None
    try:
        value = int(env)
    except ValueError:
        raise SimulationError(
            f"{ENV_SEGMENT_EVENTS}={env!r} is not an integer"
        )
    return value if value > 0 else None


def attribution_from_env(
    environ: Optional[Mapping[str, str]] = None,
) -> bool:
    """Whether ``REPRO_ATTRIBUTION`` holds a truthy value."""
    env = _environ(environ).get(ENV_ATTRIBUTION, "").strip().lower()
    return env in _TRUTHY


def ledger_path_from_env(
    environ: Optional[Mapping[str, str]] = None,
) -> Optional[str]:
    """The ledger file ``REPRO_LEDGER`` names ('' and unset mean off)."""
    env = _environ(environ).get(ENV_LEDGER, "")
    return env or None


def scalar_cache_from_env(
    environ: Optional[Mapping[str, str]] = None,
) -> bool:
    """Whether ``REPRO_SCALAR_CACHE=1`` forces the scalar oracle."""
    return _environ(environ).get(ENV_SCALAR_CACHE, "") == "1"


@dataclass(frozen=True)
class RunContext:
    """Immutable snapshot of a run's ambient configuration.

    Construct one per logical run (or per worker thread) and pass it
    to ``run_system(..., context=...)``. A context is never mutated
    after construction — derive variants with :meth:`with_options` —
    so concurrent runs in one process cannot observe each other's
    configuration, which is exactly the property ``repro serve``'s
    worker threads rely on.
    """

    #: Trace store handle, or ``None`` for caching off. Unlike the
    #: deprecated ``set_store``/``use_store`` globals this is per-run
    #: state; ``None`` here is the explicit analogue of
    #: ``set_store(None)`` (caching pinned off for this run).
    store: Optional[TraceStore] = None
    #: Out-of-core streaming segment size (``None`` = whole-trace).
    segment_events: Optional[int] = None
    #: Fold per-class traffic attribution during the replay.
    attribution: bool = False
    #: Run-ledger JSONL file to append to (``None`` = off).
    ledger_path: Optional[str] = None
    #: Force the scalar reference cache oracle instead of the batch
    #: kernel (the ``REPRO_SCALAR_CACHE`` escape hatch, made explicit).
    scalar_cache: bool = False
    #: Obs sinks: a :class:`repro.obs.SpanTracer` and a
    #: :class:`repro.obs.MetricsRegistry`. ``None`` falls back to the
    #: thread's installed sink (no-op by default).
    tracer: Optional[Any] = None
    metrics: Optional[Any] = None

    @classmethod
    def from_env(
        cls,
        *,
        cache: Union[None, bool, str, os.PathLike, TraceStore] = None,
        segment_events: Optional[int] = None,
        attribution: Optional[bool] = None,
        attribution_path: Optional[Union[str, os.PathLike]] = None,
        ledger_path: Optional[Union[str, os.PathLike]] = None,
        scalar_cache: Optional[bool] = None,
        tracer: Optional[Any] = None,
        metrics: Optional[Any] = None,
        environ: Optional[Mapping[str, str]] = None,
    ) -> "RunContext":
        """Build a context from explicit overrides plus the environment.

        This classmethod is the single sanctioned reader of ``REPRO_*``
        environment variables in ``src/repro`` (rule ENV001). Every
        parameter is an explicit override that wins over the
        environment; ``None`` means "consult the environment":

        - ``cache`` follows the legacy ``run_system(cache=...)``
          contract: ``False`` disables caching, a path or
          :class:`~repro.store.TraceStore` selects a store, and
          ``None``/``True`` resolve the ambient store — an explicitly
          installed ``set_store``/``use_store`` value (including the
          pinned-off ``set_store(None)``) wins over ``REPRO_CACHE_DIR``.
        - ``attribution_path`` implies ``attribution=True`` unless
          ``attribution`` explicitly disables it.
        - ``environ`` substitutes a mapping for ``os.environ`` (tests).
        """
        store: Optional[TraceStore]
        if cache is False:
            store = None
        elif isinstance(cache, TraceStore):
            store = cache
        elif isinstance(cache, (str, os.PathLike)):
            store = TraceStore(cache)
        else:
            installed, ambient = installed_store()
            store = ambient if installed else store_from_env(environ)

        if segment_events is None:
            segment_events = segment_events_from_env(environ)
        elif int(segment_events) <= 0:
            segment_events = None
        else:
            segment_events = int(segment_events)

        if attribution is None:
            want_attribution = (
                True if attribution_path is not None
                else attribution_from_env(environ)
            )
        else:
            want_attribution = bool(attribution)

        if ledger_path is None:
            resolved_ledger = ledger_path_from_env(environ)
        else:
            resolved_ledger = os.fspath(ledger_path)

        if scalar_cache is None:
            scalar_cache = scalar_cache_from_env(environ)

        return cls(
            store=store,
            segment_events=segment_events,
            attribution=want_attribution,
            ledger_path=resolved_ledger,
            scalar_cache=bool(scalar_cache),
            tracer=tracer,
            metrics=metrics,
        )

    def with_options(self, **changes: Any) -> "RunContext":
        """A copy with the given fields replaced (contexts are frozen)."""
        return replace(self, **changes)

    # ------------------------------------------------------------------
    # Cross-process serialization (sweep workers, serve jobs)
    # ------------------------------------------------------------------
    def to_spec(self) -> Dict[str, Any]:
        """JSON-able description of this context (obs sinks excluded).

        The store handle is flattened to its root path and capacity;
        :meth:`from_spec` rebuilds an equivalent context on the other
        side of a process boundary. Tracer/metrics sinks do not cross
        — the receiving side installs its own.
        """
        return {
            "cache_dir": None if self.store is None else str(self.store.root),
            "cache_capacity_bytes": (
                None if self.store is None else int(self.store.capacity_bytes)
            ),
            "segment_events": self.segment_events,
            "attribution": self.attribution,
            "ledger_path": self.ledger_path,
            "scalar_cache": self.scalar_cache,
        }

    @classmethod
    def from_spec(cls, spec: Mapping[str, Any]) -> "RunContext":
        """Rebuild a context from :meth:`to_spec` output.

        Never consults the environment: a worker that receives a spec
        runs with exactly the configuration its parent resolved.
        """
        cache_dir = spec.get("cache_dir")
        store = None
        if cache_dir:
            store = TraceStore(
                cache_dir,
                capacity_bytes=spec.get("cache_capacity_bytes"),
            )
        segment_events = spec.get("segment_events")
        return cls(
            store=store,
            segment_events=(
                int(segment_events) if segment_events else None
            ),
            attribution=bool(spec.get("attribution", False)),
            ledger_path=spec.get("ledger_path"),
            scalar_cache=bool(spec.get("scalar_cache", False)),
        )


@dataclass(frozen=True)
class RunRequest:
    """One run's workload description, as a serializable value.

    Absorbs the per-run keyword arguments of
    :func:`repro.core.system.run_system` (the legacy kwargs remain as
    a thin compatibility shim). Environment-derived configuration does
    *not* live here — that is :class:`RunContext` — so a request says
    *what* to run and a context says *with which surroundings*.

    ``config`` stays a separate ``run_system`` argument (it is a rich
    object); when omitted, the driver derives it from ``backend`` and
    ``num_cores`` via
    :func:`repro.core.system.default_backend_config`.
    """

    algorithm: str
    backend: Optional[str] = None
    dataset: str = ""
    #: OpenMP static-schedule chunk (mirrors ``DEFAULT_CHUNK_SIZE``).
    chunk_size: Optional[int] = 32
    sp_chunk_size: Optional[int] = None
    reorder: Optional[bool] = None
    #: Used only when the driver must derive a default config.
    num_cores: int = 16
    manifest_path: Optional[str] = None
    trace_path: Optional[str] = None
    timeline_path: Optional[str] = None
    obs_window: Optional[int] = None
    attribution_path: Optional[str] = None
    alg_kwargs: Mapping[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able form (for sweep payloads and serve job specs)."""
        return {
            "algorithm": self.algorithm,
            "backend": self.backend,
            "dataset": self.dataset,
            "chunk_size": self.chunk_size,
            "sp_chunk_size": self.sp_chunk_size,
            "reorder": self.reorder,
            "num_cores": self.num_cores,
            "manifest_path": self.manifest_path,
            "trace_path": self.trace_path,
            "timeline_path": self.timeline_path,
            "obs_window": self.obs_window,
            "attribution_path": self.attribution_path,
            "alg_kwargs": dict(self.alg_kwargs),
        }

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "RunRequest":
        """Rebuild a request from :meth:`to_dict` output."""
        known = {
            "algorithm", "backend", "dataset", "chunk_size",
            "sp_chunk_size", "reorder", "num_cores", "manifest_path",
            "trace_path", "timeline_path", "obs_window",
            "attribution_path", "alg_kwargs",
        }
        fields = {k: doc[k] for k in known if k in doc}
        if "algorithm" not in fields:
            raise SimulationError("RunRequest needs an 'algorithm'")
        fields["alg_kwargs"] = dict(fields.get("alg_kwargs") or {})
        return cls(**fields)
