"""Simulation reports: the structured output of a full-system run."""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.config import SimConfig
from repro.errors import SimulationError
from repro.memsim.core_model import TimingResult
from repro.memsim.energy import EnergyBreakdown
from repro.memsim.hierarchy import ReplayOutput
from repro.memsim.stats import MemStats
from repro.obs.timeline import Timeline

__all__ = ["SimReport", "Comparison", "MANIFEST_SCHEMA"]

#: Current manifest schema tag. v2 added the ``telemetry`` block
#: (windowed-timeline summary percentiles; ``None`` when the run was
#: not sampled). v3 added ``workload.trace_bytes`` and the
#: ``trace_cache`` block (whether the persistent trace store was
#: consulted and whether it hit). v4 added the ``segmentation``
#: block (out-of-core streaming provenance) and
#: ``replay.peak_rss_bytes`` (host RSS high-water mark). v5 added the
#: ``attribution`` block (per graph-entity/degree-class counter
#: breakdown; ``None`` when attribution was not requested). v6 added
#: ``replay.kernel`` (batch-kernel screening telemetry: screened /
#: grouped / serialized event counts, per-generation screening, and
#: the execution mode; ``None`` when the run predates the kernel
#: block).
MANIFEST_SCHEMA = "omega-repro/run-manifest/v6"


@dataclass
class SimReport:
    """Everything measured from one (system, algorithm, graph) run."""

    system: str
    algorithm: str
    dataset: str
    config: SimConfig
    stats: MemStats
    timing: TimingResult
    energy: EnergyBreakdown
    replay: ReplayOutput = field(repr=False, default=None)
    #: Scratchpad coverage of this run (0 for the baseline).
    hot_capacity: int = 0
    hot_fraction: float = 0.0
    num_vertices: int = 0
    num_edges: int = 0
    trace_events: int = 0
    #: In-memory footprint of the trace's event columns, in bytes.
    trace_bytes: int = 0
    #: Registered backend name the trace was replayed through.
    backend: str = ""
    #: Replay wall-clock time (host seconds, not simulated time).
    replay_seconds: float = 0.0
    #: Windowed replay timeline, when the run was sampled.
    timeline: Optional[Timeline] = field(repr=False, default=None)
    #: Trace-store outcome for this run (``enabled``/``hit``/``key``),
    #: or ``None`` when the driver predates the store.
    trace_cache: Optional[Dict] = None
    #: Resolved segment size when the trace was streamed (``None``
    #: for whole-trace in-core replay).
    segment_events: Optional[int] = None
    #: Number of segments the replay consumed (1 for in-core).
    num_segments: int = 1
    #: Whether the replay consumed a segment stream instead of a
    #: resident trace.
    streamed: bool = False
    #: Host peak RSS (bytes) observed after the replay stage, or
    #: ``None`` when :mod:`resource` is unavailable.
    peak_rss_bytes: Optional[int] = None
    #: Per-class attribution block (see
    #: :meth:`repro.obs.attribution.AttributionAccumulator.result`),
    #: or ``None`` when attribution was not requested.
    attribution: Optional[Dict] = field(repr=False, default=None)

    @property
    def cycles(self) -> float:
        """Total simulated cycles."""
        return self.timing.total_cycles

    @property
    def seconds(self) -> float:
        """Simulated wall-clock time."""
        return self.timing.seconds(self.config.core.freq_ghz)

    @property
    def dram_bandwidth_gbps(self) -> float:
        """Achieved DRAM bandwidth (the Fig 16 metric)."""
        return self.replay.dram.utilization_gbps(
            self.timing.total_cycles, self.config.core.freq_ghz
        )

    def summary(self) -> Dict[str, float]:
        """Headline numbers for table printers."""
        return {
            "system": self.system,
            "algorithm": self.algorithm,
            "dataset": self.dataset,
            "cycles": round(self.cycles),
            "l2_hit_rate": round(self.stats.l2_hit_rate, 4),
            "last_level_hit_rate": round(self.stats.last_level_hit_rate, 4),
            "onchip_traffic_bytes": self.stats.onchip_traffic_bytes,
            "dram_bytes": self.stats.dram_bytes,
            "dram_bw_gbps": round(self.dram_bandwidth_gbps, 3),
            "energy_nj": round(self.energy.total_nj, 1),
            "hot_fraction": round(self.hot_fraction, 4),
            "bottleneck": self.timing.bottleneck,
        }

    def to_dict(self) -> Dict:
        """Full machine-readable form (for JSON export / archiving)."""
        return {
            "summary": self.summary(),
            "workload": {
                "num_vertices": self.num_vertices,
                "num_edges": self.num_edges,
                "trace_events": self.trace_events,
                "hot_capacity": self.hot_capacity,
            },
            "stats": self.stats.as_dict(),
            "timing": {
                "total_cycles": self.timing.total_cycles,
                "bottleneck": self.timing.bottleneck,
                "bounds": dict(self.timing.bounds),
                "memory_bound_fraction": self.timing.memory_bound_fraction,
            },
            "energy_nj": self.energy.as_dict(),
        }

    def save_json(self, path) -> None:
        """Write :meth:`to_dict` as pretty-printed JSON."""
        with open(path, "w") as f:
            json.dump(self.to_dict(), f, indent=2, sort_keys=True)

    def telemetry(self) -> Optional[Dict]:
        """Manifest telemetry block: timeline summary, or ``None``.

        Summarizes the windowed time series as percentiles — compact
        enough to diff across runs without shipping every window.
        """
        if self.timeline is None:
            return None
        return {
            "window_events": self.timeline.window_events,
            "num_windows": self.timeline.num_windows,
            "summary": self.timeline.summary(),
        }

    def manifest(self) -> Dict:
        """Per-run manifest: what ran, on what machine description.

        A compact, stable record meant to sit next to result files
        (see ``docs/trace-format.md`` for the schema): configuration
        hash, workload identity, event counts, the timing/energy
        breakdown, and the replay wall-time.
        """
        events = self.trace_events
        return {
            "schema": MANIFEST_SCHEMA,
            "system": self.system,
            "backend": self.backend,
            "algorithm": self.algorithm,
            "dataset": self.dataset,
            "config": {
                "name": self.config.name,
                "hash": self.config.config_hash(),
                "num_cores": self.config.core.num_cores,
                "total_onchip_bytes": self.config.total_onchip_bytes,
            },
            "workload": {
                "num_vertices": self.num_vertices,
                "num_edges": self.num_edges,
                "trace_events": events,
                "trace_bytes": self.trace_bytes,
                "hot_capacity": self.hot_capacity,
                "hot_fraction": self.hot_fraction,
            },
            "trace_cache": self.trace_cache,
            "replay": {
                "seconds": self.replay_seconds,
                "events_per_second": (
                    events / self.replay_seconds
                    if self.replay_seconds > 0 else 0.0
                ),
                "peak_rss_bytes": self.peak_rss_bytes,
                "kernel": (
                    self.replay.kernel if self.replay is not None else None
                ),
            },
            "segmentation": {
                "streamed": self.streamed,
                "segment_events": self.segment_events,
                "num_segments": self.num_segments,
            },
            "timing": {
                "total_cycles": self.timing.total_cycles,
                "bottleneck": self.timing.bottleneck,
                "bounds": dict(self.timing.bounds),
            },
            "energy_nj": self.energy.as_dict(),
            "event_counts": self.stats.as_dict(),
            "telemetry": self.telemetry(),
            "attribution": self.attribution,
        }

    def save_manifest(self, path) -> None:
        """Write :meth:`manifest` as pretty-printed JSON.

        Parent directories are created on demand so ``--manifest
        results/manifests/run.json`` works on a fresh checkout.
        """
        parent = os.path.dirname(os.fspath(path))
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(path, "w") as f:
            json.dump(self.manifest(), f, indent=2, sort_keys=True)


@dataclass(frozen=True)
class Comparison:
    """Baseline-vs-OMEGA comparison for one workload (one Fig 14 bar)."""

    baseline: SimReport
    omega: SimReport

    def __post_init__(self) -> None:
        if self.baseline.algorithm != self.omega.algorithm:
            raise SimulationError(
                "comparison mixes algorithms:"
                f" {self.baseline.algorithm} vs {self.omega.algorithm}"
            )

    @property
    def speedup(self) -> float:
        """Baseline cycles over OMEGA cycles (>1 means OMEGA wins)."""
        if self.omega.cycles <= 0:
            raise SimulationError("omega run has zero cycles")
        return self.baseline.cycles / self.omega.cycles

    @property
    def traffic_reduction(self) -> float:
        """On-chip traffic ratio, baseline over OMEGA (Fig 17)."""
        omega_bytes = self.omega.stats.onchip_traffic_bytes
        return (
            self.baseline.stats.onchip_traffic_bytes / omega_bytes
            if omega_bytes
            else float("inf")
        )

    @property
    def dram_bw_improvement(self) -> float:
        """DRAM bandwidth-utilization ratio, OMEGA over baseline (Fig 16)."""
        base = self.baseline.dram_bandwidth_gbps
        return self.omega.dram_bandwidth_gbps / base if base else float("inf")

    @property
    def energy_saving(self) -> float:
        """Memory-system energy ratio, baseline over OMEGA (Fig 21)."""
        omega_nj = self.omega.energy.total_nj
        return self.baseline.energy.total_nj / omega_nj if omega_nj else float("inf")

    def summary(self) -> Dict[str, float]:
        """Headline ratios for table printers."""
        return {
            "algorithm": self.baseline.algorithm,
            "dataset": self.baseline.dataset,
            "speedup": round(self.speedup, 3),
            "traffic_reduction": round(self.traffic_reduction, 3),
            "dram_bw_improvement": round(self.dram_bw_improvement, 3),
            "energy_saving": round(self.energy_saving, 3),
            "baseline_llc_hit": round(self.baseline.stats.l2_hit_rate, 4),
            "omega_ll_hit": round(self.omega.stats.last_level_hit_rate, 4),
        }
