"""Offload compiler: the source-to-source translation tool (Section V-F).

The paper's tool parses a pre-annotated ``update`` function and emits
two artifacts, both reproduced here:

1. **Configuration code** — a series of stores to memory-mapped
   registers executed at application start: the PISC microcode, the
   atomic op type, and each vtxProp's ``start_addr`` / ``type_size`` /
   ``stride`` / entry count for the scratchpad controller's monitor
   unit.
2. **Offload stubs** — the translated ``update`` body, a short series
   of stores pushing the operand and destination vertex id to the PISC
   (the paper's Fig 13 shows the SSSP version: write the computed
   ShortestLen to register 1, the destination id to register 2).

Compilation works from an :class:`UpdateSpec`, the structured form of
the paper's annotations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import OffloadError
from repro.ligra.atomics import AtomicOp
from repro.ligra.props import VertexProp
from repro.memsim.pisc import MicroOp, Microcode

__all__ = [
    "UpdateSpec",
    "compile_update",
    "microcode_for_algorithm",
    "RegisterWrite",
    "generate_config_code",
    "render_offload_stub",
]

#: Memory-mapped register numbers (one block per vtxProp follows BASE).
REG_OPTYPE = 0
REG_NUM_VERTICES = 1
REG_MICROCODE_BASE = 8
REG_PROP_BASE = 32
REGS_PER_PROP = 4  # start_addr, type_size, stride, num_entries

#: Offload stub registers (Fig 13): operand value and destination id.
REG_OPERAND = 1
REG_DST_VERTEX = 2


@dataclass(frozen=True)
class UpdateSpec:
    """Structured description of an annotated update function.

    Attributes
    ----------
    name:
        Update function name (e.g. ``sssp_update``).
    atomic_op:
        The ALU operation the PISC must perform.
    guarded:
        Whether the update checks a condition before writing (BFS's
        visited test, SSSP's improvement test).
    active_list:
        ``"dense"`` sets the in-line bit, ``"sparse"`` appends the id
        through the L1, ``None`` maintains no active list (PageRank).
    """

    name: str
    atomic_op: AtomicOp
    guarded: bool = False
    active_list: Optional[str] = None
    #: Further ALU operations for compound updates (Radii's
    #: "or & signed min" performs both in one offload).
    extra_ops: tuple = ()

    def __post_init__(self) -> None:
        if self.active_list not in (None, "dense", "sparse"):
            raise OffloadError(
                f"active_list must be None/'dense'/'sparse',"
                f" got {self.active_list!r}"
            )


def compile_update(spec: UpdateSpec) -> Microcode:
    """Compile an update spec to PISC microcode.

    The canonical sequence is read-combine-write, with an optional
    guard before the combine and an active-list step after the write.
    """
    ops: List[MicroOp] = [MicroOp.SP_READ]
    if spec.guarded:
        ops.append(MicroOp.GUARD)
    ops.append(MicroOp.ALU)
    ops.extend(MicroOp.ALU for _ in spec.extra_ops)
    ops.append(MicroOp.SP_WRITE)
    if spec.active_list == "dense":
        ops.append(MicroOp.SET_ACTIVE_DENSE)
    elif spec.active_list == "sparse":
        ops.append(MicroOp.APPEND_ACTIVE_SPARSE)
    return Microcode(
        name=spec.name,
        ops=tuple(ops),
        alu_op=spec.atomic_op,
        extra_alu_ops=tuple(spec.extra_ops),
    )


#: UpdateSpec for each of the paper's algorithms (Table II atomic column).
_ALGORITHM_SPECS = {
    "pagerank": UpdateSpec("pagerank_update", AtomicOp.FP_ADD),
    "bfs": UpdateSpec("bfs_update", AtomicOp.UINT_CAS, guarded=True,
                      active_list="sparse"),
    "sssp": UpdateSpec("sssp_update", AtomicOp.SINT_MIN, guarded=True,
                       active_list="sparse"),
    "bc": UpdateSpec("bc_update", AtomicOp.FP_ADD_DEP, guarded=True,
                     active_list="sparse"),
    "radii": UpdateSpec("radii_update", AtomicOp.OR, guarded=True,
                        active_list="dense",
                        extra_ops=(AtomicOp.SINT_MIN,)),
    "cc": UpdateSpec("cc_update", AtomicOp.UINT_MIN, guarded=True,
                     active_list="dense"),
    "tc": UpdateSpec("tc_update", AtomicOp.SINT_ADD),
    "kc": UpdateSpec("kc_update", AtomicOp.SINT_ADD, guarded=True,
                     active_list="sparse"),
}


def microcode_for_algorithm(name: str) -> Microcode:
    """Microcode for one of the registered algorithms."""
    spec = _ALGORITHM_SPECS.get(name)
    if spec is None:
        raise OffloadError(
            f"no update spec for algorithm {name!r};"
            f" known: {', '.join(_ALGORITHM_SPECS)}"
        )
    return compile_update(spec)


@dataclass(frozen=True)
class RegisterWrite:
    """One generated store to a memory-mapped configuration register."""

    register: int
    value: int
    comment: str = ""

    def render(self) -> str:
        """C-like store statement, as the paper's tool emits."""
        suffix = f"  // {self.comment}" if self.comment else ""
        return f"mmio_write(R{self.register}, {self.value:#x});{suffix}"


def generate_config_code(
    props: Sequence[VertexProp],
    microcode: Microcode,
    num_vertices: int,
) -> List[RegisterWrite]:
    """Emit the application-start configuration store sequence.

    Covers everything Section V-F lists: "the optype, the start address
    of vtxProp, the number of vertices, the per-vertex entry size, and
    its stride", plus the microcode itself.
    """
    if num_vertices < 0:
        raise OffloadError(f"num_vertices must be >= 0, got {num_vertices}")
    writes = [
        RegisterWrite(REG_OPTYPE, list(AtomicOp).index(microcode.alu_op),
                      f"optype = {microcode.alu_op.value}"),
        RegisterWrite(REG_NUM_VERTICES, num_vertices, "number of vertices"),
    ]
    for i, op in enumerate(microcode.ops):
        writes.append(
            RegisterWrite(REG_MICROCODE_BASE + i, list(MicroOp).index(op),
                          f"microcode[{i}] = {op.value}")
        )
    for p, prop in enumerate(props):
        base = REG_PROP_BASE + p * REGS_PER_PROP
        writes.extend(
            [
                RegisterWrite(base, prop.start_addr,
                              f"{prop.name}.start_addr"),
                RegisterWrite(base + 1, prop.type_size,
                              f"{prop.name}.type_size"),
                RegisterWrite(base + 2, prop.stride, f"{prop.name}.stride"),
                RegisterWrite(base + 3, prop.num_vertices,
                              f"{prop.name}.num_entries"),
            ]
        )
    return writes


def render_offload_stub(spec: UpdateSpec) -> Tuple[str, ...]:
    """The translated update body (the paper's Fig 13 for SSSP).

    Two stores replace the original read-modify-write: the operand to
    register 1 and the destination vertex id to register 2.
    """
    return (
        f"// generated from annotated {spec.name}()",
        f"mmio_write(R{REG_OPERAND}, operand);   "
        f"// value for {spec.atomic_op.paper_label}",
        f"mmio_write(R{REG_DST_VERTEX}, dst_id); // triggers PISC execution",
    )
