"""Sliced execution for graphs whose hot set overflows the scratchpads.

Section VII sketches two scaling strategies beyond "just store what
fits" (which the paper evaluates): plain slicing, where each slice's
*entire* vtxProp must fit on chip, and power-law-aware slicing, where
only each slice's top ~20% must — cutting the number of passes by
~1/hot_fraction (5x). The paper defers their evaluation to future
work; this module implements both so the trade-off can be measured.

A sliced run processes one destination-range slice at a time: each
slice is popularity-reordered, simulated independently (its hot set
now fits), and charged a per-slice merge pass that writes the slice's
owned vtxProp range back to memory. Total cycles are the sum across
slices plus the merge overhead — the two costs the paper names
("processing time required for partitioning" is preprocessing, like
reordering, and excluded on both sides).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.config import SimConfig
from repro.errors import SimulationError
from repro.graph.csr import CSRGraph
from repro.graph.degree import TOP_VERTEX_FRACTION
from repro.graph.slicing import GraphSlice, slice_graph, slice_graph_power_law
from repro.core.report import SimReport
from repro.core.system import run_system
from repro.memsim.scratchpad import hot_capacity_for

__all__ = ["SlicedRunReport", "run_sliced", "slice_plan"]


@dataclass
class SlicedRunReport:
    """Outcome of one sliced execution."""

    algorithm: str
    dataset: str
    power_law_aware: bool
    num_slices: int
    slice_reports: List[SimReport]
    merge_cycles: float

    @property
    def compute_cycles(self) -> float:
        """Cycles spent inside slice simulations."""
        return sum(r.cycles for r in self.slice_reports)

    @property
    def total_cycles(self) -> float:
        """Slice simulations plus inter-slice merge passes."""
        return self.compute_cycles + self.merge_cycles

    @property
    def overhead_fraction(self) -> float:
        """Merge overhead as a share of total cycles."""
        return self.merge_cycles / self.total_cycles if self.total_cycles else 0.0


def slice_plan(
    graph: CSRGraph,
    config: SimConfig,
    bytes_per_vertex: int,
    power_law_aware: bool,
    hot_fraction: float = TOP_VERTEX_FRACTION,
) -> List[GraphSlice]:
    """Slice ``graph`` so each slice's (hot) vtxProp fits the pads."""
    capacity = hot_capacity_for(
        config.scratchpad_total_bytes, bytes_per_vertex, graph.num_vertices
    )
    if capacity <= 0:
        raise SimulationError("configuration has no scratchpad capacity")
    if power_law_aware:
        return slice_graph_power_law(graph, capacity, hot_fraction)
    return slice_graph(graph, capacity)


def run_sliced(
    graph: CSRGraph,
    algorithm: str,
    config: Optional[SimConfig] = None,
    dataset: str = "",
    power_law_aware: bool = True,
    bytes_per_vertex: int = 9,
    merge_cycles_per_vertex: float = 0.5,
    **kwargs,
) -> SlicedRunReport:
    """Run ``algorithm`` slice-at-a-time through the OMEGA hierarchy.

    Parameters
    ----------
    graph:
        The full input graph (hot set may exceed the scratchpads).
    algorithm:
        Registered algorithm name; slicing is meaningful for the
        all-active algorithms (PageRank-style) whose per-slice results
        merge by destination ownership.
    config:
        OMEGA configuration (default: the scaled Table III config).
    power_law_aware:
        Approach 3 (slice so only each slice's top 20% must fit)
        versus approach 2 (whole slice vtxProp fits).
    bytes_per_vertex:
        Scratchpad line size per vertex (vtxProp entries + active bit).
    merge_cycles_per_vertex:
        Cost of combining one owned vertex's partial result at a slice
        boundary (a sequential, prefetch-friendly pass).
    """
    config = config or SimConfig.scaled_omega()
    if not config.use_scratchpad:
        raise SimulationError("run_sliced expects an OMEGA configuration")
    slices = slice_plan(
        graph, config, bytes_per_vertex, power_law_aware=power_law_aware
    )
    reports = [
        run_system(s.graph, algorithm, config, dataset=dataset, **kwargs)
        for s in slices
    ]
    # Each slice boundary merges the slice's owned range; the first
    # slice initializes rather than merges.
    merge_vertices = sum(s.num_owned_vertices for s in slices[1:])
    merge = merge_vertices * merge_cycles_per_vertex / config.core.num_cores
    return SlicedRunReport(
        algorithm=algorithm,
        dataset=dataset,
        power_law_aware=power_law_aware,
        num_slices=len(slices),
        slice_reports=reports,
        merge_cycles=merge,
    )
