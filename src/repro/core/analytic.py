"""High-level analytic model for very large graphs (paper Fig 20).

The paper could not simulate uk-2002 and twitter-2010 in gem5, so it
built a "high-level simulator" from two approximations: (1) DRAM
accesses estimated from a measured LLC hit rate, with 100 cycles per
DRAM access, plus LLC/scratchpad access latencies; (2) remote
scratchpad accesses at the crossbar's 17-cycle average, with baseline
atomics charged the same cycles as a PISC op (conservative, favoring
the baseline). It validated the model against gem5 at small scale
(within 7%).

This module is the same model. A :class:`WorkloadProfile` captures the
per-edge/per-vertex access mix — measured from a real small-scale
trace or synthesized from Table II metadata — and
:func:`estimate_cycles` prices it for either system at any graph
scale. Scratchpad coverage at paper scale comes from a Zipf-tail model
calibrated per dataset against the coverage points the paper itself
reports (e.g. twitter: top 5% of vertices receive 47% of accesses).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.config import SimConfig
from repro.errors import SimulationError
from repro.graph.csr import CSRGraph
from repro.ligra.trace import AccessClass, FLAG_ATOMIC, FLAG_SRC_READ, Trace

__all__ = [
    "WorkloadProfile",
    "zipf_coverage",
    "calibrate_zipf_exponent",
    "LargeGraph",
    "LARGE_GRAPHS",
    "estimate_cycles",
    "estimate_speedup",
    "AnalyticResult",
]


@dataclass(frozen=True)
class WorkloadProfile:
    """Per-edge / per-vertex access mix of one algorithm.

    All rates are *events per processed edge* except
    ``vtxprop_seq_per_vertex`` (sequential vertexMap traffic per vertex
    per iteration) and ``iterations`` (effective full-graph passes).
    """

    name: str
    vtxprop_atomic_per_edge: float
    vtxprop_src_read_per_edge: float
    edgelist_per_edge: float
    ngraph_per_edge: float
    vtxprop_seq_per_vertex: float
    iterations: float = 1.0

    @classmethod
    def from_trace(
        cls, name: str, trace: Trace, graph: CSRGraph, iterations: int = 1
    ) -> "WorkloadProfile":
        """Measure a profile from a small-scale run's trace."""
        m = max(graph.num_edges * max(iterations, 1), 1)
        n = max(graph.num_vertices * max(iterations, 1), 1)
        classes = trace.access_class
        flags = trace.flags
        vtx_mask = classes == int(AccessClass.VTXPROP)
        atomics = int(((flags & FLAG_ATOMIC) != 0).sum())
        src_reads = int((((flags & FLAG_SRC_READ) != 0) & vtx_mask).sum())
        edgelist = int((classes == int(AccessClass.EDGELIST)).sum())
        ngraph = int((classes == int(AccessClass.NGRAPH)).sum())
        vtx_total = int(vtx_mask.sum())
        seq = max(vtx_total - atomics - src_reads, 0)
        return cls(
            name=name,
            vtxprop_atomic_per_edge=atomics / m,
            vtxprop_src_read_per_edge=src_reads / m,
            edgelist_per_edge=edgelist / m,
            ngraph_per_edge=ngraph / m,
            vtxprop_seq_per_vertex=seq / n,
            iterations=float(max(iterations, 1)),
        )


def zipf_coverage(fraction: float, s: float) -> float:
    """Share of accesses captured by the top ``fraction`` of vertices.

    For a Zipf-like access distribution with exponent ``s`` in (0, 1),
    the partial sums give coverage ≈ ``fraction ** (1 - s)``; natural
    graphs sit around s ≈ 0.7-0.85 (e.g. coverage(0.20) ≈ 0.77 for
    ljournal at s = 0.84 — the paper's measured value).
    """
    if not 0.0 <= fraction <= 1.0:
        raise SimulationError(f"fraction must be in [0, 1], got {fraction}")
    if not 0.0 < s < 1.0:
        raise SimulationError(f"zipf exponent must be in (0, 1), got {s}")
    if fraction == 0.0:
        return 0.0
    return min(1.0, fraction ** (1.0 - s))


def calibrate_zipf_exponent(fraction: float, coverage: float) -> float:
    """Solve ``zipf_coverage(fraction, s) == coverage`` for ``s``.

    Used to calibrate a dataset's tail model from one measured
    coverage point (e.g. the paper's "5% of vertices receive 47% of
    accesses" for twitter).
    """
    if not 0.0 < fraction < 1.0 or not 0.0 < coverage < 1.0:
        raise SimulationError(
            f"need fraction, coverage in (0, 1); got {fraction}, {coverage}"
        )
    if coverage <= fraction:
        # No skew at all: uniform access (s -> 0).
        return 1e-6
    return 1.0 - np.log(coverage) / np.log(fraction)


@dataclass(frozen=True)
class LargeGraph:
    """Paper-scale dataset description for the analytic model."""

    name: str
    num_vertices: int
    num_edges: int
    zipf_s: float
    #: Baseline LLC hit rate measured on the Xeon (paper's approximation 1).
    baseline_llc_hit_rate: float


#: The two graphs the paper's Fig 20 studies, with tail exponents
#: calibrated from its quoted coverage points (twitter: 47% @ 5%;
#: uk: 84.45% in-degree connectivity @ 20%) and Fig 4a hit rates.
LARGE_GRAPHS: Dict[str, LargeGraph] = {
    "uk": LargeGraph(
        name="uk",
        num_vertices=18_500_000,
        num_edges=298_000_000,
        zipf_s=calibrate_zipf_exponent(0.20, 0.8445),
        baseline_llc_hit_rate=0.40,
    ),
    "twitter": LargeGraph(
        name="twitter",
        num_vertices=41_600_000,
        num_edges=1_468_000_000,
        zipf_s=calibrate_zipf_exponent(0.05, 0.47),
        baseline_llc_hit_rate=0.35,
    ),
}


@dataclass(frozen=True)
class AnalyticResult:
    """Cycle estimate for one system at one scratchpad size."""

    system: str
    cycles: float
    sp_coverage: float
    hot_fraction: float


def _cache_access_cost(config: SimConfig, hit_rate: float) -> float:
    """Average cycles for a cache-path access at a given LLC hit rate."""
    l2 = config.l2_per_core.latency_cycles
    dram = config.dram.latency_cycles
    return config.l1.latency_cycles + l2 + (1.0 - hit_rate) * dram


def estimate_cycles(
    graph: LargeGraph,
    profile: WorkloadProfile,
    config: SimConfig,
    bytes_per_vertex: int,
    pisc_op_cycles: int = 4,
) -> AnalyticResult:
    """Price one system configuration for one paper-scale workload."""
    n, m = graph.num_vertices, graph.num_edges
    cores = config.core.num_cores
    mlp = config.core.mlp
    remote = config.interconnect.remote_latency_cycles
    edges_work = m * profile.iterations
    vertex_work = n * profile.iterations

    atomics = profile.vtxprop_atomic_per_edge * edges_work
    src_reads = profile.vtxprop_src_read_per_edge * edges_work
    edgelist = profile.edgelist_per_edge * edges_work
    ngraph = profile.ngraph_per_edge * edges_work
    seq = profile.vtxprop_seq_per_vertex * vertex_work
    total_accesses = atomics + src_reads + edgelist + ngraph + seq

    # edgeList streams through the caches: line-granularity reuse means
    # ~7/8 of word accesses hit the L1 line already fetched.
    edge_cost = config.l1.latency_cycles + (1.0 / 8.0) * _cache_access_cost(
        config, 0.7
    )
    ngraph_cost = float(config.l1.latency_cycles)

    if not config.use_scratchpad:
        vtx_cost = _cache_access_cost(config, graph.baseline_llc_hit_rate)
        # Approximation 2 (conservative): a baseline atomic costs the
        # same execution cycles as a PISC op, serialized in the pipeline.
        serial = atomics * pisc_op_cycles / cores
        mem = (
            atomics * vtx_cost
            + src_reads * vtx_cost
            + seq * vtx_cost
            + edgelist * edge_cost
            + ngraph * ngraph_cost
        )
        cycles = total_accesses / cores + serial + mem / (cores * mlp)
        return AnalyticResult(
            system=config.name, cycles=cycles, sp_coverage=0.0, hot_fraction=0.0
        )

    # OMEGA: coverage of the scratchpads at this graph's scale.
    line_bytes = bytes_per_vertex + 1
    capacity = min(n, config.scratchpad_total_bytes // line_bytes)
    hot_fraction = capacity / n if n else 0.0
    coverage = zipf_coverage(hot_fraction, graph.zipf_s)

    sp_lat = config.scratchpad.latency_cycles
    local_prob = 1.0 / cores
    sp_read_cost = sp_lat + (1.0 - local_prob) * remote
    cold_cost = _cache_access_cost(config, graph.baseline_llc_hit_rate * 0.8)

    offloaded = atomics * coverage if config.use_pisc else 0.0
    core_atomics = atomics - offloaded
    # Source reads: half of repeat reads are absorbed by the buffer.
    srcbuf_rate = 0.5 if config.use_source_buffer else 0.0
    src_sp = src_reads * coverage
    src_cost = (1.0 - srcbuf_rate) * sp_read_cost + srcbuf_rate * 1.0

    serial = (
        offloaded * config.core.offload_issue_cycles
        + core_atomics * pisc_op_cycles
    ) / cores
    mem = (
        core_atomics * cold_cost
        + src_sp * src_cost
        + (src_reads - src_sp) * cold_cost
        + seq * (coverage * sp_lat + (1.0 - coverage) * cold_cost)
        + edgelist * edge_cost
        + ngraph * ngraph_cost
    )
    pisc_bound = offloaded * pisc_op_cycles / cores  # ops spread over pads
    cycles = max(
        total_accesses / cores + serial + mem / (cores * mlp), pisc_bound
    )
    return AnalyticResult(
        system=config.name,
        cycles=cycles,
        sp_coverage=coverage,
        hot_fraction=hot_fraction,
    )


def estimate_speedup(
    graph: LargeGraph,
    profile: WorkloadProfile,
    baseline_config: Optional[SimConfig] = None,
    omega_config: Optional[SimConfig] = None,
    bytes_per_vertex: int = 8,
) -> float:
    """OMEGA-over-baseline speedup predicted by the high-level model."""
    baseline_config = baseline_config or SimConfig.paper_baseline()
    omega_config = omega_config or SimConfig.paper_omega()
    base = estimate_cycles(graph, profile, baseline_config, bytes_per_vertex)
    omega = estimate_cycles(graph, profile, omega_config, bytes_per_vertex)
    if omega.cycles <= 0:
        raise SimulationError("analytic omega estimate is non-positive")
    return base.cycles / omega.cycles
