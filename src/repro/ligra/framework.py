"""Vertex-centric edgeMap/vertexMap engine with memory-trace emission.

This is the reproduction's Ligra substrate (Shun & Blelloch 2013, as
used by the paper): algorithms are expressed as ``edge_map`` /
``vertex_map`` calls over :class:`~repro.ligra.vertex_subset.VertexSubset`
frontiers. The engine

- performs the *functional* computation (delegated to the algorithm's
  vectorized ``apply`` callback, which uses
  :func:`repro.ligra.atomics.scatter_atomic` for sequential-equivalent
  atomic semantics),
- implements Ligra's **direction optimization** (sparse forward
  traversal over out-edges vs. dense backward traversal over
  in-edges, switching on the |frontier|+out-edges > |E|/20 heuristic),
- assigns every access to a core with an OpenMP-style static schedule
  (configurable chunk size — the knob behind the paper's Section V-D
  "reconfigurable scratchpad mapping" experiment), and
- emits the columnar memory trace the ``repro.memsim`` hierarchy
  replays: edgeList reads, source-vtxProp reads (source-buffer
  eligible), destination atomic RMWs, active-list maintenance, and
  nGraphData bookkeeping.
"""

from __future__ import annotations

import logging
from typing import Callable, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import TraceError
from repro.obs import get_registry, get_tracer
from repro.graph.csr import CSRGraph
from repro.ligra.props import VertexProp, alloc_prop, alloc_struct_props
from repro.ligra.trace import (
    AccessClass,
    AddressSpace,
    Trace,
    TraceBuilder,
    WORD_BYTES,
)
from repro.ligra.vertex_subset import VertexSubset

__all__ = ["LigraEngine", "EdgeMapStats"]

_LOG = logging.getLogger("repro.ligra.framework")

#: Apply callback signature: (srcs, dsts, weights_or_None) -> changed vertex ids.
ApplyFn = Callable[[np.ndarray, np.ndarray, Optional[np.ndarray]], np.ndarray]


class EdgeMapStats:
    """Running counters the characterization figures read off the engine."""

    def __init__(self) -> None:
        self.edge_map_calls = 0
        self.vertex_map_calls = 0
        self.edges_processed = 0
        self.dense_calls = 0
        self.sparse_calls = 0
        self.iterations = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"EdgeMapStats(edge_maps={self.edge_map_calls},"
            f" edges={self.edges_processed}, dense={self.dense_calls},"
            f" sparse={self.sparse_calls})"
        )


def _expand_edges(
    offsets: np.ndarray, neighbors: np.ndarray, active: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Expand CSR adjacency of ``active`` vertices into flat edge arrays.

    Returns ``(srcs, dsts, pos)`` where ``pos`` is each edge's index in
    the CSR ``neighbors`` array (needed to compute its byte address).
    For the backward direction pass in_offsets/in_sources; "srcs" are
    then the owning (destination) vertices and "dsts" the in-neighbors.
    """
    degs = offsets[active + 1] - offsets[active]
    total = int(degs.sum())
    if total == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty, empty
    starts = np.repeat(offsets[active], degs)
    intra = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(degs) - degs, degs
    )
    pos = starts + intra
    srcs = np.repeat(active, degs)
    dsts = neighbors[pos]
    return srcs, dsts, pos


class LigraEngine:
    """Executes vertex-centric algorithms over a graph, emitting a trace.

    Parameters
    ----------
    graph:
        The input :class:`~repro.graph.csr.CSRGraph`.
    num_cores:
        Cores of the simulated CMP (paper setup: 16).
    chunk_size:
        OpenMP static-schedule chunk size in vertices. ``None`` means
        block partitioning (``ceil(n / num_cores)`` contiguous chunks),
        which is also what OMEGA's scratchpad mapping defaults to.
    trace:
        Disable to run functionally with zero trace overhead, or pass
        a :class:`~repro.ligra.trace.TraceBuilder` instance (e.g. a
        spooling builder) for the engine to append into.
    """

    def __init__(
        self,
        graph: CSRGraph,
        num_cores: int = 16,
        chunk_size: Optional[int] = None,
        trace: Union[bool, TraceBuilder] = True,
    ) -> None:
        if num_cores <= 0:
            raise TraceError(f"num_cores must be > 0, got {num_cores}")
        if chunk_size is not None and chunk_size <= 0:
            raise TraceError(f"chunk_size must be > 0, got {chunk_size}")
        self.graph = graph
        self.num_cores = num_cores
        self.chunk_size = chunk_size
        self.space = AddressSpace()
        self.trace_builder = (
            trace if isinstance(trace, TraceBuilder)
            else TraceBuilder(enabled=bool(trace))
        )
        self.stats = EdgeMapStats()

        n, m = graph.num_vertices, graph.num_edges
        self._out_offsets_region = self.space.allocate(
            "out_offsets", (n + 1) * WORD_BYTES, AccessClass.EDGELIST
        )
        self._out_targets_region = self.space.allocate(
            "out_targets", m * WORD_BYTES, AccessClass.EDGELIST
        )
        self._in_offsets_region = self.space.allocate(
            "in_offsets", (n + 1) * WORD_BYTES, AccessClass.EDGELIST
        )
        self._in_sources_region = self.space.allocate(
            "in_sources", m * WORD_BYTES, AccessClass.EDGELIST
        )
        self._weights_region = (
            self.space.allocate("edge_weights", m * WORD_BYTES, AccessClass.EDGELIST)
            if graph.weighted
            else None
        )
        self._ngraph_region = self.space.allocate(
            "nGraphData", 1 << 20, AccessClass.NGRAPH
        )
        self._sparse_list_region = self.space.allocate(
            "sparse_active_list", n * WORD_BYTES, AccessClass.NGRAPH
        )
        self._sparse_list_cursor = 0
        # Ligra's dense frontier is a plain bool array in framework
        # memory (read through the caches on both systems); OMEGA's
        # in-scratchpad active bit is the PISC's *output* copy.
        self._dense_frontier_region = self.space.allocate(
            "dense_frontier", n, AccessClass.NGRAPH
        )
        # The dense active list: one byte per vertex, co-located with
        # vtxProp in the scratchpads ("an extra bit is added for each
        # vtxProp entry" — Section V-A).
        self.active_bits = alloc_prop(
            self.space, "active_bits", n, np.uint8, type_size=1
        )
        self._vtx_props: list = [self.active_bits]

    # ------------------------------------------------------------------
    # Data-structure allocation
    # ------------------------------------------------------------------
    def alloc_prop(
        self,
        name: str,
        dtype,
        type_size: int = 0,
        fill: float = 0,
        vtxprop: bool = True,
    ) -> VertexProp:
        """Allocate a per-vertex array.

        ``vtxprop=True`` registers it with the scratchpad monitor unit
        (it is part of the algorithm's vtxProp and may live in
        scratchpads). ``vtxprop=False`` allocates a cache-resident
        temporary — e.g. PageRank's ``curr_pagerank`` copy, which the
        paper keeps in the regular caches.
        """
        if vtxprop:
            prop = alloc_prop(
                self.space, name, self.graph.num_vertices, dtype, type_size, fill
            )
            self._vtx_props.append(prop)
            return prop
        dtype = np.dtype(dtype)
        tsize = type_size or dtype.itemsize
        region = self.space.allocate(
            name, self.graph.num_vertices * tsize, AccessClass.NGRAPH
        )
        values = np.full(self.graph.num_vertices, fill, dtype=dtype)
        return VertexProp(
            name=name, values=values, region=region, type_size=tsize, stride=tsize
        )

    def alloc_struct(self, struct_name: str, fields: Sequence[Tuple[str, np.dtype]]):
        """Allocate an array-of-structs vtxProp (stride > type_size)."""
        props = alloc_struct_props(
            self.space, struct_name, self.graph.num_vertices, fields
        )
        self._vtx_props.extend(props)
        return props

    @property
    def vtx_props(self) -> Tuple[VertexProp, ...]:
        """All scratchpad-eligible properties (monitor-register contents)."""
        return tuple(self._vtx_props)

    def vtxprop_bytes_per_vertex(self) -> int:
        """Total vtxProp entry size per vertex (Table II row)."""
        return sum(
            p.type_size for p in self._vtx_props if p is not self.active_bits
        )

    # ------------------------------------------------------------------
    # Core scheduling
    # ------------------------------------------------------------------
    def cores_for_positions(self, positions: np.ndarray, total: int) -> np.ndarray:
        """Map iteration positions to cores with the OpenMP static schedule."""
        positions = np.asarray(positions, dtype=np.int64)
        if total <= 0:
            return np.zeros(len(positions), dtype=np.int16)
        if self.chunk_size is None:
            block = -(-total // self.num_cores)
            return (positions // block).astype(np.int16)
        return ((positions // self.chunk_size) % self.num_cores).astype(np.int16)

    def cores_for_edges(self, num_edges: int) -> np.ndarray:
        """Edge-balanced core assignment for an edgeMap sweep.

        Ligra's parallel-for balances by *edge* count (hub vertices are
        split across workers), so we block-partition the flat edge
        array; consecutive edges of one source stay on one core, which
        preserves the locality the source vertex buffer exploits.
        """
        if num_edges <= 0:
            return np.zeros(0, dtype=np.int16)
        block = -(-num_edges // self.num_cores)
        return (np.arange(num_edges, dtype=np.int64) // block).astype(np.int16)

    # ------------------------------------------------------------------
    # edgeMap
    # ------------------------------------------------------------------
    def edge_map(
        self,
        frontier: VertexSubset,
        apply_fn: ApplyFn,
        src_props: Sequence[VertexProp] = (),
        dst_props: Sequence[VertexProp] = (),
        direction: str = "auto",
        output: str = "auto",
        use_weights: bool = False,
        remove_duplicates: bool = True,
    ) -> VertexSubset:
        """Apply an edge update over all edges leaving the frontier.

        Parameters
        ----------
        frontier:
            Source vertex subset.
        apply_fn:
            Vectorized callback ``(srcs, dsts, weights) -> changed_ids``
            performing the actual property updates.
        src_props:
            Properties read per-edge from the source vertex (emits
            source-buffer-eligible read events).
        dst_props:
            Properties atomically updated at the destination (one RMW
            event each per edge in sparse mode).
        direction:
            ``"out"`` (sparse/forward), ``"in"`` (dense/backward), or
            ``"auto"`` for Ligra's heuristic.
        output:
            Next-frontier representation: ``"sparse"``, ``"dense"``,
            ``"auto"``, or ``"none"`` (result discarded, e.g. PageRank).
        use_weights:
            Also read per-edge weights (SSSP).
        remove_duplicates:
            Deduplicate the returned frontier (Ligra's default).

        Returns
        -------
        VertexSubset
            The set of destination vertices whose property changed.
        """
        if direction not in ("auto", "out", "in"):
            raise TraceError(f"bad direction {direction!r}")
        if output not in ("auto", "sparse", "dense", "none"):
            raise TraceError(f"bad output {output!r}")
        if use_weights and not self.graph.weighted:
            raise TraceError("use_weights=True on an unweighted graph")

        graph = self.graph
        self.stats.edge_map_calls += 1
        if direction == "auto":
            dense = frontier.should_use_dense(graph.out_degrees(), graph.num_edges)
        else:
            dense = direction == "in"

        edges_before = self.stats.edges_processed
        with get_tracer().span(
            "edge_map", cat="ligra", call=self.stats.edge_map_calls,
            mode="dense" if dense else "sparse", frontier_size=len(frontier),
        ) as span:
            if dense:
                changed = self._edge_map_dense(
                    frontier, apply_fn, src_props, dst_props, use_weights
                )
                self.stats.dense_calls += 1
            else:
                changed = self._edge_map_sparse(
                    frontier, apply_fn, src_props, dst_props, use_weights
                )
                self.stats.sparse_calls += 1

            if not remove_duplicates:
                changed = np.sort(changed)
            result = VertexSubset(graph.num_vertices, ids=changed)
            self._record_active_list_update(result, output)
            # Each edgeMap step ends an iteration: source-vertex
            # properties may change afterwards, so the source buffers
            # invalidate here.
            self.trace_builder.mark_barrier()
            edges = self.stats.edges_processed - edges_before
            span.annotate(edges=edges, changed=len(result))
        metrics = get_registry()
        metrics.counter("ligra.edge_map_calls").inc()
        metrics.counter("ligra.edges_processed").inc(edges)
        _LOG.debug(
            "edge_map #%d: %s, |frontier|=%d, %d edges, %d changed",
            self.stats.edge_map_calls, "dense" if dense else "sparse",
            len(frontier), edges, len(result),
        )
        return result

    def mark_iteration(self) -> None:
        """Explicitly mark an algorithm-iteration boundary in the trace."""
        self.trace_builder.mark_barrier()

    def _edge_map_sparse(
        self,
        frontier: VertexSubset,
        apply_fn: ApplyFn,
        src_props: Sequence[VertexProp],
        dst_props: Sequence[VertexProp],
        use_weights: bool,
    ) -> np.ndarray:
        graph = self.graph
        active = frontier.to_sparse()
        srcs, dsts, pos = _expand_edges(
            graph.out_offsets, graph.out_targets, active
        )
        self.stats.edges_processed += len(srcs)
        weights = graph.out_weights[pos] if use_weights else None

        tb = self.trace_builder
        if tb.enabled and len(active):
            edge_cores = self.cores_for_edges(len(srcs))
            degs = graph.out_offsets[active + 1] - graph.out_offsets[active]
            # Each source's offset read happens on the core that owns
            # its first edge (zero-degree sources fold onto core 0's
            # schedule slot for that position).
            first_edge = np.cumsum(degs) - degs
            block = max(1, -(-len(srcs) // self.num_cores)) if len(srcs) else 1
            vertex_cores = np.minimum(
                first_edge // block, self.num_cores - 1
            ).astype(np.int16)
            tb.append(
                vertex_cores,
                self._out_offsets_region.base + active * WORD_BYTES,
                WORD_BYTES,
                AccessClass.EDGELIST,
            )
            if len(srcs):
                # Sequential reads of the out-target array (edgeList).
                tb.append(
                    edge_cores,
                    self._out_targets_region.base + pos * WORD_BYTES,
                    WORD_BYTES,
                    AccessClass.EDGELIST,
                )
                if use_weights:
                    tb.append(
                        edge_cores,
                        self._weights_region.base + pos * WORD_BYTES,
                        WORD_BYTES,
                        AccessClass.EDGELIST,
                    )
                # Per-edge source property reads (source-buffer eligible
                # when the prop is scratchpad-resident vtxProp).
                for prop in src_props:
                    tb.append(
                        edge_cores,
                        prop.addr(srcs),
                        prop.type_size,
                        self.space.classify(prop.start_addr),
                        src_read=True,
                        vertex=srcs,
                    )
                # Per-edge atomic RMW on the destination property.
                for prop in dst_props:
                    tb.append(
                        edge_cores,
                        prop.addr(dsts),
                        prop.type_size,
                        self.space.classify(prop.start_addr),
                        write=True,
                        atomic=True,
                        update=True,
                        vertex=dsts,
                    )
            self._record_ngraph_bookkeeping(len(active))

        return apply_fn(srcs, dsts, weights)

    def _edge_map_dense(
        self,
        frontier: VertexSubset,
        apply_fn: ApplyFn,
        src_props: Sequence[VertexProp],
        dst_props: Sequence[VertexProp],
        use_weights: bool,
    ) -> np.ndarray:
        graph = self.graph
        n = graph.num_vertices
        all_vertices = np.arange(n, dtype=np.int64)
        owners, in_nbrs, pos = _expand_edges(
            graph.in_offsets, graph.in_sources, all_vertices
        )
        in_frontier = frontier.to_dense()[in_nbrs]
        srcs = in_nbrs[in_frontier]
        dsts = owners[in_frontier]
        self.stats.edges_processed += len(owners)
        weights = graph.in_weights[pos[in_frontier]] if use_weights else None

        tb = self.trace_builder
        if tb.enabled and n:
            # Dense mode iterates destination vertices with the static
            # vertex-chunk schedule: each core scans and updates the
            # vertices whose scratchpad lines it owns (Section V-D's
            # matched-chunk configuration).
            vertex_cores = self.cores_for_positions(all_vertices, n)
            degs = graph.in_degrees()
            edge_cores = np.repeat(vertex_cores, degs)
            tb.append(
                vertex_cores,
                self._in_offsets_region.base + all_vertices * WORD_BYTES,
                WORD_BYTES,
                AccessClass.EDGELIST,
            )
            if len(owners):
                tb.append(
                    edge_cores,
                    self._in_sources_region.base + pos * WORD_BYTES,
                    WORD_BYTES,
                    AccessClass.EDGELIST,
                )
                if use_weights:
                    tb.append(
                        edge_cores,
                        self._weights_region.base + pos * WORD_BYTES,
                        WORD_BYTES,
                        AccessClass.EDGELIST,
                    )
                # The backward scan checks every in-neighbor's frontier
                # bit in the framework's dense bool array (cache path).
                tb.append(
                    edge_cores,
                    self._dense_frontier_region.base + in_nbrs,
                    1,
                    AccessClass.NGRAPH,
                )
                front_cores = edge_cores[in_frontier]
                for prop in src_props:
                    tb.append(
                        front_cores,
                        prop.addr(srcs),
                        prop.type_size,
                        self.space.classify(prop.start_addr),
                        src_read=True,
                        vertex=srcs,
                    )
                # Dense mode: the owning core writes its own vertex, no
                # atomicity required (Ligra's denseness guarantee) —
                # but the update function itself is still offloadable.
                for prop in dst_props:
                    tb.append(
                        front_cores,
                        prop.addr(dsts),
                        prop.type_size,
                        self.space.classify(prop.start_addr),
                        write=True,
                        atomic=False,
                        update=True,
                        vertex=dsts,
                    )
            self._record_ngraph_bookkeeping(n)

        return apply_fn(srcs, dsts, weights)

    # ------------------------------------------------------------------
    # vertexMap
    # ------------------------------------------------------------------
    def vertex_map(
        self,
        subset: VertexSubset,
        fn: Optional[Callable[[np.ndarray], Optional[np.ndarray]]] = None,
        read_props: Sequence[VertexProp] = (),
        write_props: Sequence[VertexProp] = (),
        output: str = "none",
    ) -> VertexSubset:
        """Apply a per-vertex function over a subset.

        ``fn`` receives the subset's sorted id array and may return the
        ids to keep (vertexFilter semantics); returning ``None`` keeps
        all. ``read_props``/``write_props`` drive trace emission:
        sequential reads/writes of each property entry.
        """
        self.stats.vertex_map_calls += 1
        ids = subset.to_sparse()
        get_registry().counter("ligra.vertex_map_calls").inc()
        with get_tracer().span(
            "vertex_map", cat="ligra", call=self.stats.vertex_map_calls,
            size=len(ids),
        ):
            tb = self.trace_builder
            if tb.enabled and len(ids):
                positions = np.arange(len(ids), dtype=np.int64)
                cores = self.cores_for_positions(positions, len(ids))
                for prop in read_props:
                    tb.append(
                        cores,
                        prop.addr(ids),
                        prop.type_size,
                        self.space.classify(prop.start_addr),
                        vertex=ids,
                    )
                for prop in write_props:
                    tb.append(
                        cores,
                        prop.addr(ids),
                        prop.type_size,
                        self.space.classify(prop.start_addr),
                        write=True,
                        vertex=ids,
                    )
            kept = fn(ids) if fn is not None else None
            result_ids = (
                ids if kept is None else np.asarray(kept, dtype=np.int64)
            )
            result = VertexSubset(self.graph.num_vertices, ids=result_ids)
            if output != "none":
                self._record_active_list_update(result, output)
        return result

    # ------------------------------------------------------------------
    # Trace plumbing
    # ------------------------------------------------------------------
    def _record_active_list_update(self, subset: VertexSubset, output: str) -> None:
        """Emit active-list maintenance events for a new frontier.

        Dense lists set the per-vertex bit stored alongside vtxProp in
        the scratchpads; sparse lists append ids to a memory-resident
        array through the L1 (Section V-B).
        """
        if output == "none" or not self.trace_builder.enabled:
            return
        ids = subset.to_sparse()
        if len(ids) == 0:
            return
        n = subset.num_vertices
        use_dense = output == "dense" or (
            output == "auto" and len(ids) > n // VertexSubset.DENSE_DIVISOR
        )
        positions = np.arange(len(ids), dtype=np.int64)
        cores = self.cores_for_positions(positions, len(ids))
        if use_dense:
            self.trace_builder.append(
                cores,
                self.active_bits.addr(ids),
                1,
                AccessClass.VTXPROP,
                write=True,
                vertex=ids,
            )
        else:
            start = self._sparse_list_cursor
            addrs = (
                self._sparse_list_region.base
                + ((start + positions) % self.graph.num_vertices) * WORD_BYTES
            )
            self._sparse_list_cursor = (start + len(ids)) % max(
                self.graph.num_vertices, 1
            )
            self.trace_builder.append(
                cores, addrs, WORD_BYTES, AccessClass.NGRAPH, write=True
            )

    def _record_ngraph_bookkeeping(self, iter_len: int) -> None:
        """Loop counters and frame state: one access per schedule chunk."""
        if iter_len <= 0:
            return
        if self.chunk_size is None:
            num_chunks = min(self.num_cores, iter_len)
        else:
            num_chunks = -(-iter_len // self.chunk_size)
        cores = self.cores_for_positions(
            np.arange(num_chunks, dtype=np.int64)
            * (self.chunk_size or max(1, iter_len // self.num_cores)),
            iter_len,
        )
        addrs = self._ngraph_region.base + (
            np.arange(num_chunks, dtype=np.int64) % 128
        ) * WORD_BYTES
        self.trace_builder.append(cores, addrs, WORD_BYTES, AccessClass.NGRAPH)

    # ------------------------------------------------------------------
    # Raw trace hooks for non-edgeMap algorithms (e.g. triangle counting)
    # ------------------------------------------------------------------
    def record_offset_reads(self, cores, vertices: np.ndarray) -> None:
        """Record CSR out-offset reads for ``vertices`` (edgeList class)."""
        vertices = np.asarray(vertices, dtype=np.int64)
        self.trace_builder.append(
            cores,
            self._out_offsets_region.base + vertices * WORD_BYTES,
            WORD_BYTES,
            AccessClass.EDGELIST,
        )

    def record_adjacency_reads(self, cores, positions: np.ndarray) -> None:
        """Record out-target array reads at CSR ``positions`` (edgeList)."""
        positions = np.asarray(positions, dtype=np.int64)
        self.trace_builder.append(
            cores,
            self._out_targets_region.base + positions * WORD_BYTES,
            WORD_BYTES,
            AccessClass.EDGELIST,
        )

    def record_prop_access(
        self,
        cores,
        prop: VertexProp,
        vertices: np.ndarray,
        write: bool = False,
        atomic: bool = False,
        src_read: bool = False,
    ) -> None:
        """Record direct property accesses outside edge/vertex map."""
        vertices = np.asarray(vertices, dtype=np.int64)
        self.trace_builder.append(
            cores,
            prop.addr(vertices),
            prop.type_size,
            self.space.classify(prop.start_addr),
            write=write,
            atomic=atomic,
            src_read=src_read,
            vertex=vertices,
        )

    def build_trace(self) -> Trace:
        """Finalize and return the accumulated memory trace.

        The engine's address-space layout is attached so saved
        archives are self-describing (``docs/trace-format.md``).
        """
        trace = self.trace_builder.build()
        trace.regions = tuple(self.space.regions)
        return trace
