"""Ligra-like vertex-centric framework substrate.

Provides the programming model the paper's algorithms run on — vertex
subsets, property arrays with explicit memory layout, atomic update
vocabulary, and the edgeMap/vertexMap engine that both computes results
and emits the memory traces consumed by :mod:`repro.memsim`.
"""

from repro.ligra.atomics import AtomicOp, apply_atomic, scatter_atomic
from repro.ligra.framework import LigraEngine
from repro.ligra.props import VertexProp
from repro.ligra.trace import (
    AccessClass,
    AddressSpace,
    Trace,
    TraceBuilder,
    CACHE_LINE_BYTES,
    WORD_BYTES,
)
from repro.ligra.vertex_subset import VertexSubset

__all__ = [
    "AtomicOp",
    "apply_atomic",
    "scatter_atomic",
    "LigraEngine",
    "VertexProp",
    "AccessClass",
    "AddressSpace",
    "Trace",
    "TraceBuilder",
    "CACHE_LINE_BYTES",
    "WORD_BYTES",
    "VertexSubset",
]
