"""Atomic-operation vocabulary (paper Table II / Section V-B).

Each graph algorithm's inner loop boils down to one or two simple
atomic read-modify-write operations on the destination vertex's
property — floating-point add for PageRank, unsigned compare-and-swap
for BFS, signed min for SSSP, and so on. OMEGA's PISC engines
implement exactly this vocabulary in hardware; this module defines the
operations once so that

- the Ligra engine can apply them functionally (vectorized),
- the offload compiler can emit PISC microcode for them, and
- the PISC timing model can charge the right ALU latency/energy.
"""

from __future__ import annotations

import enum
from typing import Callable

import numpy as np

from repro.errors import SimulationError

__all__ = ["AtomicOp", "apply_atomic", "scatter_atomic"]


class AtomicOp(enum.Enum):
    """Atomic RMW operations supported by the PISC ALU."""

    #: Floating-point add (PageRank's rank accumulation).
    FP_ADD = "fp_add"
    #: Unsigned compare-and-swap against an "unvisited" sentinel (BFS parent).
    UINT_CAS = "uint_cas"
    #: Signed integer minimum (SSSP distance relaxation, BC level).
    SINT_MIN = "sint_min"
    #: Unsigned integer minimum (CC label propagation).
    UINT_MIN = "uint_min"
    #: Bitwise OR (Radii's visited-bitmask union).
    OR = "or"
    #: Signed integer add (TC/KC counters).
    SINT_ADD = "sint_add"
    #: Floating-point add fused with a dependency check (BC).
    FP_ADD_DEP = "fp_add_dep"

    @property
    def is_floating_point(self) -> bool:
        """True for ops that need the PISC's FP adder (its area driver)."""
        return self in (AtomicOp.FP_ADD, AtomicOp.FP_ADD_DEP)

    @property
    def paper_label(self) -> str:
        """Human-readable label as used in the paper's Table II."""
        return {
            AtomicOp.FP_ADD: "fp add",
            AtomicOp.UINT_CAS: "unsigned comp.",
            AtomicOp.SINT_MIN: "signed min",
            AtomicOp.UINT_MIN: "unsigned min",
            AtomicOp.OR: "or",
            AtomicOp.SINT_ADD: "signed add",
            AtomicOp.FP_ADD_DEP: "min & fp add",
        }[self]


def _combine(op: AtomicOp, current: np.ndarray, operand: np.ndarray) -> np.ndarray:
    """Pure combine step of the RMW, vectorized over aligned arrays."""
    if op in (AtomicOp.FP_ADD, AtomicOp.FP_ADD_DEP, AtomicOp.SINT_ADD):
        return current + operand
    if op in (AtomicOp.SINT_MIN, AtomicOp.UINT_MIN):
        return np.minimum(current, operand)
    if op is AtomicOp.OR:
        return current | operand
    if op is AtomicOp.UINT_CAS:
        # CAS against the max-value "unvisited" sentinel: keep current
        # unless it still holds the sentinel.
        sentinel = np.iinfo(current.dtype).max if current.dtype.kind in "iu" else -1
        return np.where(current == sentinel, operand, current)
    raise SimulationError(f"unsupported atomic op {op}")  # pragma: no cover


def apply_atomic(op: AtomicOp, current: np.ndarray, operand: np.ndarray) -> np.ndarray:
    """Apply ``op`` element-wise: ``result[i] = op(current[i], operand[i])``."""
    current = np.asarray(current)
    operand = np.asarray(operand, dtype=current.dtype)
    return _combine(op, current, operand)


_UFUNC: dict = {}


def _scatter_ufunc(op: AtomicOp) -> Callable:
    """The ``np.ufunc.at``-style scatter routine for duplicate indices."""
    if not _UFUNC:
        _UFUNC.update(
            {
                AtomicOp.FP_ADD: np.add.at,
                AtomicOp.FP_ADD_DEP: np.add.at,
                AtomicOp.SINT_ADD: np.add.at,
                AtomicOp.SINT_MIN: np.minimum.at,
                AtomicOp.UINT_MIN: np.minimum.at,
                AtomicOp.OR: np.bitwise_or.at,
            }
        )
    return _UFUNC[op]


def scatter_atomic(
    op: AtomicOp,
    array: np.ndarray,
    indices: np.ndarray,
    operands: np.ndarray,
) -> np.ndarray:
    """Apply ``array[indices[i]] = op(array[indices[i]], operands[i])`` for all i.

    Handles duplicate indices with true sequential-equivalent semantics
    (``np.ufunc.at``), which is what a hardware atomic guarantees.
    Returns the indices whose stored value changed (deduplicated) — the
    information edgeMap needs to build the next frontier.
    """
    indices = np.asarray(indices, dtype=np.int64)
    if len(indices) == 0:
        return indices
    uniq = np.unique(indices)
    before = array[uniq].copy()
    if op is AtomicOp.UINT_CAS:
        # First writer wins among duplicates; emulate by keeping the
        # first occurrence of each index.
        sentinel = np.iinfo(array.dtype).max if array.dtype.kind in "iu" else -1
        first_idx = np.unique(indices, return_index=True)[1]
        sel = indices[first_idx]
        vals = np.asarray(operands)[first_idx]
        unvisited = array[sel] == sentinel
        array[sel[unvisited]] = vals[unvisited]
    else:
        _scatter_ufunc(op)(array, indices, np.asarray(operands, dtype=array.dtype))
    changed = uniq[array[uniq] != before]
    return changed
