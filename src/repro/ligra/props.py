"""Vertex-property arrays with explicit memory layout.

A :class:`VertexProp` pairs a numpy value array with the address-layout
metadata the OMEGA scratchpad controller's *address monitoring
registers* need (Section V-A): ``start_addr``, ``type_size`` and
``stride``. The stride differs from the type size when the property is
a field inside an array-of-structs, which the paper calls out
explicitly; :func:`alloc_struct_props` models that case.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import TraceError
from repro.ligra.trace import AccessClass, AddressSpace, Region

__all__ = ["VertexProp", "alloc_prop", "alloc_struct_props"]


@dataclass
class VertexProp:
    """A per-vertex property array plus its virtual-memory layout.

    Attributes
    ----------
    name:
        Human-readable name (e.g. ``next_pagerank``).
    values:
        The numpy backing array (one entry per vertex).
    region:
        Address-space region the array occupies.
    type_size:
        Bytes per entry as laid out in memory (the paper's vtxProp
        entry sizes range from 1 to 8 bytes — Table II).
    stride:
        Distance in bytes between consecutive entries; equals
        ``type_size`` for a plain array, larger for struct members.
    """

    name: str
    values: np.ndarray
    region: Region
    type_size: int
    stride: int

    @property
    def start_addr(self) -> int:
        """Base address (the monitor register's ``start_addr``)."""
        return self.region.base

    @property
    def num_vertices(self) -> int:
        """Number of entries."""
        return len(self.values)

    def addr(self, vertices: np.ndarray) -> np.ndarray:
        """Virtual addresses of the entries for ``vertices`` (vectorized)."""
        return self.region.base + np.asarray(vertices, dtype=np.int64) * self.stride

    def addr_one(self, vertex: int) -> int:
        """Virtual address of a single vertex's entry."""
        if not 0 <= vertex < len(self.values):
            raise TraceError(
                f"vertex {vertex} out of range for prop {self.name!r}"
            )
        return self.region.base + vertex * self.stride

    def vertex_of(self, addr: int) -> int:
        """Inverse of :meth:`addr_one` (the controller's index unit)."""
        off = addr - self.region.base
        if off < 0 or off >= self.region.size:
            raise TraceError(f"address {addr:#x} outside prop {self.name!r}")
        return off // self.stride


def alloc_prop(
    space: AddressSpace,
    name: str,
    num_vertices: int,
    dtype: np.dtype,
    type_size: int = 0,
    fill: float = 0,
) -> VertexProp:
    """Allocate a plain per-vertex property array.

    ``type_size`` defaults to the dtype's item size; pass it explicitly
    to model narrower in-memory layouts (e.g. a 1-byte bool).
    """
    dtype = np.dtype(dtype)
    tsize = type_size or dtype.itemsize
    if tsize <= 0:
        raise TraceError(f"type_size must be > 0, got {tsize}")
    region = space.allocate(name, num_vertices * tsize, AccessClass.VTXPROP)
    values = np.full(num_vertices, fill, dtype=dtype)
    return VertexProp(
        name=name, values=values, region=region, type_size=tsize, stride=tsize
    )


def alloc_struct_props(
    space: AddressSpace,
    struct_name: str,
    num_vertices: int,
    fields: Sequence[Tuple[str, np.dtype]],
) -> List[VertexProp]:
    """Allocate several properties packed as an array-of-structs.

    Each field gets ``stride = struct size`` and an offset base address,
    modeling the case the paper describes where "the vtxProp is part of
    a 'struct' data structure" and the monitor register's stride is the
    distance between consecutive entries of the same field.
    """
    if not fields:
        raise TraceError("struct must have at least one field")
    dtypes = [np.dtype(d) for _, d in fields]
    struct_size = sum(d.itemsize for d in dtypes)
    region = space.allocate(
        struct_name, num_vertices * struct_size, AccessClass.VTXPROP
    )
    props: List[VertexProp] = []
    offset = 0
    for (fname, _), dtype in zip(fields, dtypes):
        sub_region = Region(
            name=f"{struct_name}.{fname}",
            base=region.base + offset,
            size=num_vertices * struct_size - offset,
            access_class=AccessClass.VTXPROP,
        )
        props.append(
            VertexProp(
                name=f"{struct_name}.{fname}",
                values=np.zeros(num_vertices, dtype=dtype),
                region=sub_region,
                type_size=dtype.itemsize,
                stride=struct_size,
            )
        )
        offset += dtype.itemsize
    return props
