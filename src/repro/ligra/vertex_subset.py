"""Vertex subsets: Ligra's sparse/dense active-vertex lists.

Ligra represents the frontier either *sparsely* (an array of active
vertex ids) or *densely* (a boolean per vertex) and converts between
the two based on frontier size — the representation also determines
how OMEGA maintains the active list in hardware (Section V-B
"Maintaining the active-list": dense lists are a bit per scratchpad
line, sparse lists are appended through the L1).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

import numpy as np

from repro.errors import TraceError

__all__ = ["VertexSubset"]


class VertexSubset:
    """An immutable set of active vertices over ``0..num_vertices-1``.

    Internally keeps whichever representation it was built from and
    materializes the other lazily. Equality and iteration follow set
    semantics (sorted ids).
    """

    #: Ligra's threshold: go dense when |frontier| + its out-edges
    #: exceed |E| / DENSE_DIVISOR.
    DENSE_DIVISOR = 20

    def __init__(
        self,
        num_vertices: int,
        ids: Optional[np.ndarray] = None,
        dense: Optional[np.ndarray] = None,
    ) -> None:
        if num_vertices < 0:
            raise TraceError(f"num_vertices must be >= 0, got {num_vertices}")
        if (ids is None) == (dense is None):
            raise TraceError("provide exactly one of ids= or dense=")
        self._n = int(num_vertices)
        self._ids: Optional[np.ndarray] = None
        self._dense: Optional[np.ndarray] = None
        if ids is not None:
            arr = np.unique(np.asarray(ids, dtype=np.int64))
            if len(arr) and (arr[0] < 0 or arr[-1] >= num_vertices):
                raise TraceError("subset ids out of range")
            self._ids = arr
        else:
            d = np.asarray(dense, dtype=bool)
            if d.shape != (num_vertices,):
                raise TraceError(
                    f"dense mask must have shape ({num_vertices},), got {d.shape}"
                )
            self._dense = d.copy()

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, num_vertices: int) -> "VertexSubset":
        """The empty frontier."""
        return cls(num_vertices, ids=np.zeros(0, dtype=np.int64))

    @classmethod
    def single(cls, num_vertices: int, vertex: int) -> "VertexSubset":
        """A singleton frontier (BFS/SSSP root)."""
        return cls(num_vertices, ids=np.array([vertex], dtype=np.int64))

    @classmethod
    def full(cls, num_vertices: int) -> "VertexSubset":
        """All vertices active (PageRank's every-iteration frontier)."""
        return cls(num_vertices, dense=np.ones(num_vertices, dtype=bool))

    @classmethod
    def from_ids(cls, num_vertices: int, ids: Iterable[int]) -> "VertexSubset":
        """Build from an iterable of vertex ids."""
        return cls(num_vertices, ids=np.fromiter(ids, dtype=np.int64))

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Size of the universe this subset draws from."""
        return self._n

    def to_sparse(self) -> np.ndarray:
        """Sorted array of active vertex ids."""
        if self._ids is None:
            self._ids = np.flatnonzero(self._dense).astype(np.int64)
        return self._ids

    def to_dense(self) -> np.ndarray:
        """Boolean mask of length ``num_vertices``."""
        if self._dense is None:
            d = np.zeros(self._n, dtype=bool)
            d[self._ids] = True
            self._dense = d
        return self._dense

    def __len__(self) -> int:
        if self._ids is not None:
            return len(self._ids)
        return int(self._dense.sum())

    def __bool__(self) -> bool:
        return len(self) > 0

    def __contains__(self, vertex: int) -> bool:
        return bool(self.to_dense()[vertex])

    def __iter__(self) -> Iterator[int]:
        return iter(int(v) for v in self.to_sparse())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VertexSubset):
            return NotImplemented
        return self._n == other._n and np.array_equal(
            self.to_sparse(), other.to_sparse()
        )

    def __hash__(self) -> int:  # subsets are hashable by content
        return hash((self._n, self.to_sparse().tobytes()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"VertexSubset({len(self)}/{self._n})"

    # ------------------------------------------------------------------
    # Decisions & algebra
    # ------------------------------------------------------------------
    def should_use_dense(self, out_degrees: np.ndarray, num_edges: int) -> bool:
        """Ligra's direction-optimization heuristic.

        Returns True when ``|frontier| + sum(out_degree(frontier))``
        exceeds ``num_edges / DENSE_DIVISOR`` — the point where a dense
        backward traversal beats a sparse forward one.
        """
        ids = self.to_sparse()
        work = len(ids) + int(out_degrees[ids].sum())
        return work > num_edges // self.DENSE_DIVISOR

    def union(self, other: "VertexSubset") -> "VertexSubset":
        """Set union."""
        self._check_same_universe(other)
        return VertexSubset(
            self._n, ids=np.union1d(self.to_sparse(), other.to_sparse())
        )

    def difference(self, other: "VertexSubset") -> "VertexSubset":
        """Set difference ``self - other``."""
        self._check_same_universe(other)
        return VertexSubset(
            self._n, ids=np.setdiff1d(self.to_sparse(), other.to_sparse())
        )

    def intersection(self, other: "VertexSubset") -> "VertexSubset":
        """Set intersection."""
        self._check_same_universe(other)
        return VertexSubset(
            self._n, ids=np.intersect1d(self.to_sparse(), other.to_sparse())
        )

    def _check_same_universe(self, other: "VertexSubset") -> None:
        if self._n != other._n:
            raise TraceError(
                f"subset universes differ: {self._n} vs {other._n}"
            )
