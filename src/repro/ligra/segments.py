"""Segmented trace archives: streaming writes, bounded-memory reads.

Format version 3 turns the trace archive into a first-class *segment
index*: the event columns are split into fixed-size segments, each
stored as its own uncompressed ``.npy`` member of a zip archive, next
to a small index (``segment_bounds``, ``barriers``, the region table,
and an ``interleaved`` flag). Because the members are plain ``.npy``
blobs in a plain zip, ``np.load`` can still open the archive and read
the index, while :class:`SegmentedTrace` streams one segment at a
time — resident memory is bounded by one segment, not the trace.

Three producers/consumers live here:

- :class:`SegmentWriter` — incremental archive writer. Accepts column
  batches of any size, cuts segments at exact ``segment_events``
  multiples, and writes each completed segment immediately, so a
  trace larger than RAM can be spooled to disk as it is generated.
- :class:`SegmentedTrace` — the read side. Backed either by an open
  archive (lazy: segments are read — or memory-mapped with
  ``mmap_mode`` — on demand) or by an in-core :class:`Trace` (for
  tests and for segmenting an already-materialized trace).
- :class:`SpoolingTraceBuilder` — a :class:`TraceBuilder` that flushes
  each completed barrier span (in lockstep-interleaved order) into a
  :class:`SegmentWriter` instead of accumulating the whole trace.

The interleave invariant: lockstep interleaving is applied per
barrier span and spans compose independently, so a spooled archive
holds exactly the event order ``Trace.interleaved()`` would produce —
replaying its segments back-to-back is bit-identical to in-core
replay of the interleaved trace.
"""

from __future__ import annotations

import io
import zipfile
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np
from numpy.lib import format as npformat

from repro.errors import TraceError
from repro.ligra.trace import (
    READABLE_TRACE_VERSIONS,
    TRACE_FORMAT_VERSION,
    AccessClass,
    Region,
    Trace,
    TraceBuilder,
    span_lockstep_perm,
)

__all__ = [
    "DEFAULT_SEGMENT_EVENTS",
    "EVENT_COLUMNS",
    "SegmentWriter",
    "SegmentedTrace",
    "SpoolingTraceBuilder",
]

#: Default segment granularity (events). 2^18 events is ~5.5 MiB of
#: columns — small enough to bound RSS, large enough to keep the
#: vectorized replay stages efficient.
DEFAULT_SEGMENT_EVENTS = 262144

#: Per-event columns, in archive order, with their canonical dtypes.
EVENT_COLUMNS: Tuple[Tuple[str, type], ...] = (
    ("core", np.int16),
    ("addr", np.int64),
    ("size", np.int16),
    ("access_class", np.int8),
    ("flags", np.int8),
    ("vertex", np.int64),
)

_COLUMN_NAMES = tuple(name for name, _ in EVENT_COLUMNS)


def _segment_member(index: int, column: str) -> str:
    return f"seg{index:05d}.{column}.npy"


def _write_member(zf: zipfile.ZipFile, name: str, array: np.ndarray) -> None:
    """Write one ``.npy`` member with a fixed (epoch) timestamp.

    ``ZipInfo``'s default date is the zip epoch, so archives are
    byte-deterministic for identical inputs (``zf.write`` would stamp
    the local mtime instead).
    """
    info = zipfile.ZipInfo(name)
    array = np.asarray(array)
    if array.ndim:
        # ascontiguousarray would promote 0-d scalars to 1-d.
        array = np.ascontiguousarray(array)
    with zf.open(info, "w", force_zip64=True) as fp:
        npformat.write_array(fp, array, allow_pickle=False)


def _read_member(zf: zipfile.ZipFile, name: str) -> np.ndarray:
    return npformat.read_array(io.BytesIO(zf.read(name)),
                               allow_pickle=False)


def _member_memmap(path: str, info: zipfile.ZipInfo,
                   mmap_mode: str) -> np.ndarray:
    """Memory-map one stored ``.npy`` member in place.

    Only ``ZIP_STORED`` members are mappable (the data is the raw
    ``.npy`` stream); the local file header is parsed to find the
    data offset because its extra-field length can differ from the
    central directory's.
    """
    if info.compress_type != zipfile.ZIP_STORED:
        raise TraceError(
            f"{info.filename} in {path} is compressed; only stored"
            " members can be memory-mapped"
        )
    with open(path, "rb") as f:
        f.seek(info.header_offset)
        header = f.read(30)
        if len(header) < 30 or header[:4] != b"PK\x03\x04":
            raise TraceError(
                f"{path} has a corrupt local header for {info.filename}"
            )
        name_len = int.from_bytes(header[26:28], "little")
        extra_len = int.from_bytes(header[28:30], "little")
        f.seek(info.header_offset + 30 + name_len + extra_len)
        version = npformat.read_magic(f)
        if version == (1, 0):
            shape, fortran, dtype = npformat.read_array_header_1_0(f)
        elif version == (2, 0):
            shape, fortran, dtype = npformat.read_array_header_2_0(f)
        else:
            raise TraceError(
                f"{info.filename} in {path} has unsupported npy"
                f" version {version}"
            )
        offset = f.tell()
    return np.memmap(path, dtype=dtype, mode=mmap_mode, offset=offset,
                     shape=shape, order="F" if fortran else "C")


class SegmentWriter:
    """Incremental segmented-archive writer with bounded buffering.

    Column batches of arbitrary size go in via :meth:`append`; full
    segments of exactly ``segment_events`` events are written to the
    archive as soon as they fill, so at most one segment (plus the
    current input batch) is ever resident. :meth:`close` flushes the
    final partial segment and writes the index members.
    """

    def __init__(self, path, segment_events: int = DEFAULT_SEGMENT_EVENTS,
                 interleaved: bool = False) -> None:
        if segment_events <= 0:
            raise TraceError(
                f"segment_events must be > 0, got {segment_events}"
            )
        self.path = path
        self.segment_events = int(segment_events)
        self.interleaved = interleaved
        self._zf: Optional[zipfile.ZipFile] = zipfile.ZipFile(
            path, "w", compression=zipfile.ZIP_STORED, allowZip64=True
        )
        self._pending: List[Dict[str, np.ndarray]] = []
        self._pending_n = 0
        self._counts: List[int] = []

    @property
    def num_events(self) -> int:
        """Events accepted so far (written + buffered)."""
        return sum(self._counts) + self._pending_n

    def append(self, columns: Dict[str, np.ndarray]) -> None:
        """Buffer one batch; write out every segment it completes."""
        if self._zf is None:
            raise TraceError("SegmentWriter is closed")
        n = len(columns["addr"])
        if n == 0:
            return
        batch = {
            name: np.asarray(columns[name], dtype=dtype)
            for name, dtype in EVENT_COLUMNS
        }
        for name in _COLUMN_NAMES:
            if len(batch[name]) != n:
                raise TraceError(
                    f"column {name!r} length {len(batch[name])} != {n}"
                )
        self._pending.append(batch)
        self._pending_n += n
        if self._pending_n >= self.segment_events:
            self._drain(final=False)

    def _drain(self, final: bool) -> None:
        if self._pending_n == 0:
            return
        cols = {
            name: np.concatenate([b[name] for b in self._pending])
            for name in _COLUMN_NAMES
        }
        n = self._pending_n
        self._pending = []
        self._pending_n = 0
        step = self.segment_events
        lo = 0
        while n - lo >= step:
            self._write_segment(
                {name: cols[name][lo:lo + step] for name in _COLUMN_NAMES}
            )
            lo += step
        if lo < n:
            if final:
                self._write_segment(
                    {name: cols[name][lo:] for name in _COLUMN_NAMES}
                )
            else:
                # Copy the remainder so the drained batches can be freed.
                self._pending = [
                    {name: cols[name][lo:].copy() for name in _COLUMN_NAMES}
                ]
                self._pending_n = n - lo

    def _write_segment(self, cols: Dict[str, np.ndarray]) -> None:
        index = len(self._counts)
        for name in _COLUMN_NAMES:
            _write_member(self._zf, _segment_member(index, name), cols[name])
        self._counts.append(len(cols["addr"]))

    def close(self, barriers: Sequence[int] = (),
              regions: Tuple[Region, ...] = ()) -> None:
        """Flush the tail segment and write the archive index."""
        if self._zf is None:
            return
        self._drain(final=True)
        zf = self._zf
        bounds = np.zeros(len(self._counts) + 1, dtype=np.int64)
        np.cumsum(np.asarray(self._counts, dtype=np.int64), out=bounds[1:])
        total = int(bounds[-1])
        barrier_arr = np.asarray(
            sorted({int(b) for b in barriers if 0 <= b <= total}),
            dtype=np.int64,
        )
        _write_member(zf, "format_version.npy",
                      np.asarray(np.int64(TRACE_FORMAT_VERSION)))
        _write_member(zf, "interleaved.npy",
                      np.asarray(np.int64(1 if self.interleaved else 0)))
        _write_member(zf, "segment_bounds.npy", bounds)
        _write_member(zf, "barriers.npy", barrier_arr)
        if regions:
            _write_member(zf, "region_name.npy", np.array(
                [r.name for r in regions], dtype=np.str_))
            _write_member(zf, "region_base.npy", np.array(
                [r.base for r in regions], dtype=np.int64))
            _write_member(zf, "region_size.npy", np.array(
                [r.size for r in regions], dtype=np.int64))
            _write_member(zf, "region_class.npy", np.array(
                [int(r.access_class) for r in regions], dtype=np.int8))
        self._zf = None
        zf.close()

    def abort(self) -> None:
        """Close the underlying file without finalizing the index."""
        if self._zf is not None:
            zf = self._zf
            self._zf = None
            zf.close()


class SegmentedTrace:
    """A trace exposed as an ordered sequence of segment traces.

    Backed either by an open v3 archive (:meth:`open` — segments are
    read on demand, optionally memory-mapped) or by an in-core
    :class:`Trace` (:meth:`from_trace`). Each segment comes out as a
    self-contained :class:`Trace` whose barriers are rebased to the
    segment and whose ``regions`` are the full table, so every replay
    stage (pre-pass, routing, source-buffer barriers) works unchanged
    on a segment.
    """

    def __init__(self, *, bounds: np.ndarray, barriers: np.ndarray,
                 regions: Tuple[Region, ...], interleaved: bool,
                 trace: Optional[Trace] = None,
                 path=None, zf: Optional[zipfile.ZipFile] = None,
                 mmap_mode: Optional[str] = None) -> None:
        self.segment_bounds = np.asarray(bounds, dtype=np.int64)
        self.barriers = np.asarray(barriers, dtype=np.int64)
        self.regions = regions
        self.interleaved = interleaved
        self.path = path
        self._trace = trace
        self._zf = zf
        self._mmap_mode = mmap_mode

    # -- constructors --------------------------------------------------
    @classmethod
    def from_trace(cls, trace: Trace,
                   segment_events: int = DEFAULT_SEGMENT_EVENTS,
                   interleave: bool = True) -> "SegmentedTrace":
        """Segment an in-core trace (interleaving it first by default)."""
        if segment_events <= 0:
            raise TraceError(
                f"segment_events must be > 0, got {segment_events}"
            )
        if interleave:
            trace = trace.interleaved()
        n = trace.num_events
        bounds = np.arange(0, n, segment_events, dtype=np.int64)
        bounds = np.append(bounds, n)
        return cls(
            bounds=bounds, barriers=np.asarray(trace.barriers,
                                               dtype=np.int64),
            regions=trace.regions, interleaved=interleave, trace=trace,
        )

    @classmethod
    def open(cls, path,
             mmap_mode: Optional[str] = None) -> "SegmentedTrace":
        """Open a v3 segmented archive for streaming reads.

        ``mmap_mode`` (e.g. ``"r"``) memory-maps segment columns in
        place instead of reading them, trading page-cache pressure
        for zero-copy access. The default reads each segment into a
        fresh buffer that is dropped when iteration moves on — that
        is what keeps peak RSS bounded.
        """
        zf = zipfile.ZipFile(path, "r")
        try:
            names = set(zf.namelist())
            if "segment_bounds.npy" not in names:
                raise TraceError(
                    f"{path} is not a segmented trace archive"
                )
            if "format_version.npy" in names:
                version = int(_read_member(zf, "format_version.npy"))
                if version not in READABLE_TRACE_VERSIONS:
                    readable = sorted(READABLE_TRACE_VERSIONS)
                    raise TraceError(
                        f"{path} has trace format version {version};"
                        f" this build reads versions {readable}"
                    )
            bounds = _read_member(zf, "segment_bounds.npy")
            barriers = (
                _read_member(zf, "barriers.npy")
                if "barriers.npy" in names
                else np.zeros(0, dtype=np.int64)
            )
            interleaved = bool(
                int(_read_member(zf, "interleaved.npy"))
                if "interleaved.npy" in names else 0
            )
            regions: Tuple[Region, ...] = ()
            if "region_base.npy" in names:
                regions = tuple(
                    Region(
                        name=str(name), base=int(base), size=int(size),
                        access_class=AccessClass(int(klass)),
                    )
                    for name, base, size, klass in zip(
                        _read_member(zf, "region_name.npy"),
                        _read_member(zf, "region_base.npy"),
                        _read_member(zf, "region_size.npy"),
                        _read_member(zf, "region_class.npy"),
                    )
                )
        except Exception:  # repro: noqa[EXC001] -- cleanup-and-reraise: close the archive on any failure, then propagate it unchanged
            zf.close()
            raise
        return cls(
            bounds=bounds, barriers=barriers, regions=regions,
            interleaved=interleaved, path=path, zf=zf,
            mmap_mode=mmap_mode,
        )

    # -- geometry ------------------------------------------------------
    @property
    def num_segments(self) -> int:
        return len(self.segment_bounds) - 1

    @property
    def num_events(self) -> int:
        return int(self.segment_bounds[-1])

    @property
    def nbytes(self) -> int:
        """Column footprint, matching :attr:`Trace.nbytes` semantics."""
        per_event = sum(np.dtype(d).itemsize for _, d in EVENT_COLUMNS)
        return int(self.num_events * per_event + self.barriers.nbytes)

    def __len__(self) -> int:
        return self.num_events

    # -- reads ---------------------------------------------------------
    def _segment_columns(self, index: int) -> Dict[str, np.ndarray]:
        lo = int(self.segment_bounds[index])
        hi = int(self.segment_bounds[index + 1])
        if self._trace is not None:
            t = self._trace
            return {name: getattr(t, name)[lo:hi] for name in _COLUMN_NAMES}
        if self._zf is None:
            raise TraceError("SegmentedTrace is closed")
        if self._mmap_mode is not None:
            return {
                name: _member_memmap(
                    self.path,
                    self._zf.getinfo(_segment_member(index, name)),
                    self._mmap_mode,
                )
                for name in _COLUMN_NAMES
            }
        return {
            name: _read_member(self._zf, _segment_member(index, name))
            for name in _COLUMN_NAMES
        }

    def segment(self, index: int) -> Trace:
        """Segment ``index`` as a standalone :class:`Trace`.

        Barriers are rebased to the segment (a global barrier ``b``
        lands in the segment with ``lo <= b < hi``), so the
        source-buffer invalidation walk sees each barrier exactly
        once across the whole sequence.
        """
        if not 0 <= index < self.num_segments:
            raise TraceError(
                f"segment index {index} out of range"
                f" [0, {self.num_segments})"
            )
        lo = int(self.segment_bounds[index])
        hi = int(self.segment_bounds[index + 1])
        b = self.barriers
        local = b[(b >= lo) & (b < hi)] - lo
        cols = self._segment_columns(index)
        seg = Trace(
            core=cols["core"], addr=cols["addr"], size=cols["size"],
            access_class=cols["access_class"], flags=cols["flags"],
            vertex=cols["vertex"],
            barriers=np.asarray(local, dtype=np.int64),
            regions=self.regions,
        )
        if self.interleaved:
            seg._interleaved = seg
        return seg

    def iter_segments(self) -> Iterator[Trace]:
        """Stream the segments in order."""
        for index in range(self.num_segments):
            yield self.segment(index)

    def materialize(self) -> Trace:
        """Concatenate every segment into one in-core :class:`Trace`."""
        if self._trace is not None:
            return self._trace
        if self.num_segments == 0:
            empty64 = np.zeros(0, dtype=np.int64)
            trace = Trace(
                core=np.zeros(0, dtype=np.int16), addr=empty64,
                size=np.zeros(0, dtype=np.int16),
                access_class=np.zeros(0, dtype=np.int8),
                flags=np.zeros(0, dtype=np.int8), vertex=empty64,
                barriers=self.barriers.copy(), regions=self.regions,
            )
        else:
            parts = [self._segment_columns(i)
                     for i in range(self.num_segments)]
            trace = Trace(
                **{
                    name: np.concatenate([p[name] for p in parts])
                    for name in _COLUMN_NAMES
                },
                barriers=self.barriers.copy(),
                regions=self.regions,
            )
        if self.interleaved:
            trace._interleaved = trace
        return trace

    # -- writes --------------------------------------------------------
    def save(self, path) -> None:
        """Write a v3 archive with this trace's exact segmentation."""
        step = max(
            int(np.diff(self.segment_bounds).max()) if self.num_segments
            else 1, 1,
        )
        writer = SegmentWriter(path, segment_events=step,
                               interleaved=self.interleaved)
        try:
            for index in range(self.num_segments):
                writer.append(self._segment_columns(index))
            writer.close(barriers=self.barriers.tolist(),
                         regions=self.regions)
        except Exception:  # repro: noqa[EXC001] -- cleanup-and-reraise: abort the partial spool on any failure, then propagate it unchanged
            writer.abort()
            raise

    def close(self) -> None:
        """Release the underlying archive handle (idempotent)."""
        if self._zf is not None:
            zf = self._zf
            self._zf = None
            zf.close()

    def __enter__(self) -> "SegmentedTrace":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class SpoolingTraceBuilder(TraceBuilder):
    """A trace builder that spools to a segmented archive as it runs.

    Each completed barrier span is lockstep-interleaved (the same
    per-span permutation :meth:`Trace.interleaved` applies) and
    flushed to a :class:`SegmentWriter`, so resident memory is
    bounded by the largest span plus one segment — never the whole
    trace. :meth:`finalize` closes the archive and returns the
    spooled :class:`SegmentedTrace`; :meth:`build` is unavailable
    (it would defeat the point by materializing).
    """

    def __init__(self, path,
                 segment_events: int = DEFAULT_SEGMENT_EVENTS) -> None:
        super().__init__(enabled=True)
        self._writer = SegmentWriter(path, segment_events=segment_events,
                                     interleaved=True)
        self._flushed = 0

    @property
    def num_events(self) -> int:
        return self._flushed + sum(len(c["addr"]) for c in self._chunks)

    def _flush_span(self) -> None:
        if not self._chunks:
            return
        chunks = self._chunks
        self._chunks = []
        cols = {
            name: np.concatenate([c[name] for c in chunks])
            for name in _COLUMN_NAMES
        }
        perm = span_lockstep_perm(cols["core"])
        self._writer.append(
            {name: cols[name][perm] for name in _COLUMN_NAMES}
        )
        self._flushed += len(perm)

    def mark_barrier(self) -> None:
        self._barriers.append(self.num_events)
        self._flush_span()

    def build(self) -> Trace:
        raise TraceError(
            "SpoolingTraceBuilder spools to disk; call finalize() for"
            " the SegmentedTrace instead of build()"
        )

    def finalize(self, regions: Tuple[Region, ...] = ()) -> SegmentedTrace:
        """Flush the tail span, close the archive, and open the result."""
        self._flush_span()
        self._writer.close(barriers=self._barriers, regions=regions)
        return SegmentedTrace.open(self._writer.path)

    def abort(self) -> None:
        """Drop the spool without finalizing (cleanup on error)."""
        self._writer.abort()
