"""Memory-trace model: events, address space, and the trace buffer.

The trace-driven simulator (``repro.memsim``) replays streams of memory
accesses produced by the Ligra engine. Each event records which core
issued it, the virtual address and size, which of the paper's three
data-structure classes it belongs to (``vtxProp``, ``edgeList``,
``nGraphData`` — Section II "Graph data structures"), whether it is a
write and/or an atomic RMW, whether it is a *source-vertex* read
(eligible for OMEGA's source vertex buffer, Section V-C), and the
vertex id it refers to (for scratchpad partitioning).

Events are stored column-wise in numpy arrays and appended in
vectorized batches, never one Python object per access.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import TraceError

__all__ = [
    "AccessClass",
    "Region",
    "AddressSpace",
    "Trace",
    "TraceBuilder",
    "FLAG_WRITE",
    "FLAG_ATOMIC",
    "FLAG_SRC_READ",
    "FLAG_UPDATE",
    "WORD_BYTES",
    "CACHE_LINE_BYTES",
    "TRACE_FORMAT_VERSION",
    "READABLE_TRACE_VERSIONS",
    "span_lockstep_perm",
]

#: On-disk trace-archive format version. Version 1 added the
#: ``format_version`` scalar and the optional address-space region
#: metadata columns; version 2 marks archives produced by the layered
#: replay engine (same columns — the bump reserves the number for the
#: batch-kernel era so downstream caches can tell generations apart);
#: version 3 adds the *segmented* archive layout (a ``segment_bounds``
#: index plus per-segment column blobs — see
#: :mod:`repro.ligra.segments`), while monolithic v3 archives keep the
#: v2 column set. Archives written before versioning (no
#: ``format_version`` entry) are still accepted as legacy.
TRACE_FORMAT_VERSION = 3

#: Archive versions :meth:`Trace.load` reads. Versions 1 and 2 are
#: column-compatible with monolithic version 3, so all three load;
#: anything newer is rejected rather than misread. The loader
#: dispatches on archive *layout* (the presence of a
#: ``segment_bounds`` index marks a segmented archive), not on the
#: version number alone.
READABLE_TRACE_VERSIONS = frozenset({1, 2, 3})

#: Machine word size (the paper's max vtxProp entry is 8 bytes).
WORD_BYTES = 8
#: Cache line / block size used throughout the paper's setup (Table III).
CACHE_LINE_BYTES = 64

FLAG_WRITE = 1
FLAG_ATOMIC = 2
FLAG_SRC_READ = 4
#: The event is an algorithm update-function application on the
#: destination vertex (offloadable to a PISC even when not atomic —
#: GraphMat-style owner-writes frameworks).
FLAG_UPDATE = 8


class AccessClass(enum.IntEnum):
    """The paper's three-way data-structure classification."""

    VTXPROP = 0
    EDGELIST = 1
    NGRAPH = 2


@dataclass(frozen=True)
class Region:
    """A named contiguous address range belonging to one access class."""

    name: str
    base: int
    size: int
    access_class: AccessClass

    @property
    def end(self) -> int:
        """One past the last byte of the region."""
        return self.base + self.size

    def contains(self, addr: int) -> bool:
        """Whether ``addr`` falls inside this region."""
        return self.base <= addr < self.end


class AddressSpace:
    """Simple bump allocator handing out page-aligned virtual regions.

    Mirrors how the graph framework lays its arrays out in memory; the
    scratchpad controller's *address monitoring registers* (Section
    V-A) are configured from the vtxProp regions allocated here.
    """

    PAGE = 4096

    def __init__(self, base: int = 0x1000_0000) -> None:
        self._next = base
        self._regions: List[Region] = []

    def allocate(self, name: str, size: int, access_class: AccessClass) -> Region:
        """Reserve ``size`` bytes for ``name`` and return the region."""
        if size < 0:
            raise TraceError(f"region size must be >= 0, got {size}")
        base = self._next
        span = max(size, 1)
        self._next = base + ((span + self.PAGE - 1) // self.PAGE) * self.PAGE
        region = Region(name=name, base=base, size=size, access_class=access_class)
        self._regions.append(region)
        return region

    @property
    def regions(self) -> Sequence[Region]:
        """All allocated regions, in allocation order."""
        return tuple(self._regions)

    def classify(self, addr: int) -> AccessClass:
        """Class of the region containing ``addr`` (NGRAPH if unmapped)."""
        for region in self._regions:
            if region.contains(addr):
                return region.access_class
        return AccessClass.NGRAPH


def span_lockstep_perm(core: np.ndarray) -> np.ndarray:
    """Permutation putting one barrier span into lockstep core order.

    Event ``i`` of every core precedes event ``i+1`` of any core;
    per-core order is preserved. Factored out of
    :meth:`Trace.interleaved` so the streaming spool
    (:mod:`repro.ligra.segments`) can apply the identical reorder one
    span at a time — spans compose independently, so per-span
    application reproduces the whole-trace interleave exactly.
    """
    m = len(core)
    order = np.argsort(core, kind="stable")
    sorted_c = core[order]
    starts = np.flatnonzero(np.r_[True, sorted_c[1:] != sorted_c[:-1]])
    sizes = np.diff(np.r_[starts, m])
    group_start = np.repeat(starts, sizes)
    rank = np.empty(m, dtype=np.int64)
    rank[order] = np.arange(m) - group_start
    return np.lexsort((core, rank))


@dataclass
class Trace:
    """A finalized column-wise memory trace.

    Attributes
    ----------
    core:
        Issuing core id per event.
    addr:
        Virtual byte address per event.
    size:
        Access size in bytes.
    access_class:
        :class:`AccessClass` value per event.
    flags:
        Bitwise OR of ``FLAG_WRITE``, ``FLAG_ATOMIC``, ``FLAG_SRC_READ``.
    vertex:
        Vertex id for vtxProp events, -1 otherwise.
    """

    core: np.ndarray
    addr: np.ndarray
    size: np.ndarray
    access_class: np.ndarray
    flags: np.ndarray
    vertex: np.ndarray
    #: Event indices at algorithm-iteration boundaries (source-buffer
    #: invalidation points — Section V-C).
    barriers: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))
    #: Address-space layout the trace was generated against (one
    #: :class:`Region` per allocated array), when known. Carried
    #: through :meth:`save`/:meth:`load` so standalone archives are
    #: self-describing.
    regions: Tuple[Region, ...] = ()

    def __len__(self) -> int:
        return len(self.addr)

    @property
    def num_events(self) -> int:
        """Total number of memory events."""
        return len(self.addr)

    @property
    def nbytes(self) -> int:
        """In-memory footprint of the event columns, in bytes."""
        return int(
            self.core.nbytes
            + self.addr.nbytes
            + self.size.nbytes
            + self.access_class.nbytes
            + self.flags.nbytes
            + self.vertex.nbytes
            + self.barriers.nbytes
        )

    def count(
        self,
        access_class: Optional[AccessClass] = None,
        atomic: Optional[bool] = None,
        write: Optional[bool] = None,
    ) -> int:
        """Count events matching the given filters."""
        mask = np.ones(len(self.addr), dtype=bool)
        if access_class is not None:
            mask &= self.access_class == int(access_class)
        if atomic is not None:
            mask &= ((self.flags & FLAG_ATOMIC) != 0) == atomic
        if write is not None:
            mask &= ((self.flags & FLAG_WRITE) != 0) == write
        return int(mask.sum())

    def vtxprop_vertex_ids(self) -> np.ndarray:
        """Vertex ids of all vtxProp events (the Fig 4b / Fig 5 input)."""
        mask = self.access_class == int(AccessClass.VTXPROP)
        return self.vertex[mask]

    def interleaved(self) -> "Trace":
        """Round-robin interleave events across cores (lockstep model).

        The trace builder appends each core's work in contiguous
        blocks, but on real hardware the cores run concurrently —
        their accesses to shared hub lines contend. This reorders each
        barrier-delimited segment so that cores' event streams advance
        in lockstep (event i of every core before event i+1 of any),
        which is what exposes the coherence ping-pong of core-executed
        atomics on the baseline CMP. Per-core event order is preserved,
        so per-core state (L1s, stream detectors, buffers) is
        unaffected; only shared state sees the realistic interleaving.

        The permutation is deterministic and traces are treated as
        immutable once built, so the result is memoized — replaying
        one trace through several backends (:func:`run_backends`, the
        comparison drivers) interleaves once, not per replay.
        """
        cached = getattr(self, "_interleaved", None)
        if cached is not None:
            return cached
        n = len(self.addr)
        if n == 0:
            return self
        perm = np.empty(n, dtype=np.int64)
        bounds = [0] + [int(b) for b in self.barriers if 0 < b < n] + [n]
        for lo, hi in zip(bounds[:-1], bounds[1:]):
            if hi <= lo:
                continue
            perm[lo:hi] = lo + span_lockstep_perm(self.core[lo:hi])
        result = Trace(
            core=self.core[perm],
            addr=self.addr[perm],
            size=self.size[perm],
            access_class=self.access_class[perm],
            flags=self.flags[perm],
            vertex=self.vertex[perm],
            barriers=self.barriers.copy(),
            regions=self.regions,
        )
        # Instance attribute, not a dataclass field: it stays out of
        # __eq__/__repr__ and of save()'s column set.
        self._interleaved = result
        result._interleaved = result  # lockstep order is a fixed point
        return result

    def save(self, path) -> None:
        """Persist the trace as a compressed ``.npz`` archive.

        Archives carry :data:`TRACE_FORMAT_VERSION` plus the
        address-space region table (when :attr:`regions` is set), so a
        loader can validate compatibility and recover the memory
        layout without the generating engine.
        """
        columns = {
            "format_version": np.int64(TRACE_FORMAT_VERSION),
            "core": self.core,
            "addr": self.addr,
            "size": self.size,
            "access_class": self.access_class,
            "flags": self.flags,
            "vertex": self.vertex,
            "barriers": self.barriers,
        }
        if self.regions:
            columns["region_name"] = np.array(
                [r.name for r in self.regions], dtype=np.str_
            )
            columns["region_base"] = np.array(
                [r.base for r in self.regions], dtype=np.int64
            )
            columns["region_size"] = np.array(
                [r.size for r in self.regions], dtype=np.int64
            )
            columns["region_class"] = np.array(
                [int(r.access_class) for r in self.regions], dtype=np.int8
            )
        np.savez_compressed(path, **columns)

    @classmethod
    def load(cls, path, mmap_mode: Optional[str] = None) -> "Trace":
        """Load a trace previously written by :meth:`save`.

        The loader dispatches on archive layout: monolithic archives
        (v1/v2, and v3 written by :meth:`save`) read eagerly as
        before; segmented v3 archives (a ``segment_bounds`` index
        with per-segment blobs) are materialized through
        :class:`repro.ligra.segments.SegmentedTrace` — pass
        ``mmap_mode`` (e.g. ``"r"``) to memory-map their columns
        instead of copying, and use ``SegmentedTrace.open`` directly
        to stream without materializing at all.

        Raises :class:`~repro.errors.TraceError` when the archive is
        not a trace, or carries a ``format_version`` outside
        :data:`READABLE_TRACE_VERSIONS` (legacy archives without the
        version entry load as before).
        """
        with np.load(path) as data:
            segmented = "segment_bounds" in data.files
            if not segmented:
                required = {
                    "core", "addr", "size", "access_class", "flags",
                    "vertex",
                }
                missing = required - set(data.files)
                if missing:
                    raise TraceError(
                        f"{path} is not a trace archive;"
                        f" missing {sorted(missing)}"
                    )
            if "format_version" in data.files:
                version = int(data["format_version"])
                if version not in READABLE_TRACE_VERSIONS:
                    readable = sorted(READABLE_TRACE_VERSIONS)
                    raise TraceError(
                        f"{path} has trace format version {version};"
                        f" this build reads versions {readable}"
                    )
            if not segmented:
                return cls._load_monolithic(data)
        from repro.ligra.segments import SegmentedTrace

        segtrace = SegmentedTrace.open(path, mmap_mode=mmap_mode)
        try:
            return segtrace.materialize()
        finally:
            segtrace.close()

    @classmethod
    def _load_monolithic(cls, data) -> "Trace":
        regions: Tuple[Region, ...] = ()
        if "region_base" in data.files:
            regions = tuple(
                Region(
                    name=str(name),
                    base=int(base),
                    size=int(size),
                    access_class=AccessClass(int(klass)),
                )
                for name, base, size, klass in zip(
                    data["region_name"],
                    data["region_base"],
                    data["region_size"],
                    data["region_class"],
                )
            )
        return cls(
            core=data["core"],
            addr=data["addr"],
            size=data["size"],
            access_class=data["access_class"],
            flags=data["flags"],
            vertex=data["vertex"],
            barriers=(
                data["barriers"]
                if "barriers" in data.files
                else np.zeros(0, dtype=np.int64)
            ),
            regions=regions,
        )

    def concat(self, other: "Trace") -> "Trace":
        """Concatenate two traces (events of ``other`` follow ``self``)."""
        return Trace(
            core=np.concatenate([self.core, other.core]),
            addr=np.concatenate([self.addr, other.addr]),
            size=np.concatenate([self.size, other.size]),
            access_class=np.concatenate([self.access_class, other.access_class]),
            flags=np.concatenate([self.flags, other.flags]),
            vertex=np.concatenate([self.vertex, other.vertex]),
            barriers=np.concatenate(
                [self.barriers, other.barriers + len(self.addr)]
            ),
            regions=self.regions if self.regions else other.regions,
        )


def _as_full(x: Union[int, np.ndarray], n: int, dtype) -> np.ndarray:
    if np.isscalar(x):
        return np.full(n, x, dtype=dtype)
    arr = np.asarray(x, dtype=dtype)
    if len(arr) != n:
        raise TraceError(f"batch column length {len(arr)} != {n}")
    return arr


@dataclass
class TraceBuilder:
    """Accumulates event batches and finalizes them into a :class:`Trace`.

    ``enabled=False`` turns the builder into a cheap no-op so
    algorithms can run functionally without paying trace costs.
    """

    enabled: bool = True
    _chunks: List[Dict[str, np.ndarray]] = field(default_factory=list)
    _barriers: List[int] = field(default_factory=list)

    def append(
        self,
        core: Union[int, np.ndarray],
        addr: np.ndarray,
        size: Union[int, np.ndarray],
        access_class: AccessClass,
        write: bool = False,
        atomic: bool = False,
        src_read: bool = False,
        update: bool = False,
        vertex: Union[int, np.ndarray] = -1,
    ) -> None:
        """Append a homogeneous batch of events (vectorized)."""
        if not self.enabled:
            return
        addr = np.asarray(addr, dtype=np.int64)
        n = len(addr)
        if n == 0:
            return
        flags = (
            (FLAG_WRITE if write else 0)
            | (FLAG_ATOMIC if atomic else 0)
            | (FLAG_SRC_READ if src_read else 0)
            | (FLAG_UPDATE if update else 0)
        )
        self._chunks.append(
            {
                "core": _as_full(core, n, np.int16),
                "addr": addr,
                "size": _as_full(size, n, np.int16),
                "access_class": np.full(n, int(access_class), dtype=np.int8),
                "flags": np.full(n, flags, dtype=np.int8),
                "vertex": _as_full(vertex, n, np.int64),
            }
        )

    @property
    def num_events(self) -> int:
        """Number of events appended so far."""
        return sum(len(c["addr"]) for c in self._chunks)

    def mark_barrier(self) -> None:
        """Record an iteration boundary at the current event position."""
        if self.enabled:
            self._barriers.append(self.num_events)

    def build(self) -> Trace:
        """Finalize into a single columnar :class:`Trace`."""
        barriers = np.asarray(sorted(set(self._barriers)), dtype=np.int64)
        if not self._chunks:
            empty64 = np.zeros(0, dtype=np.int64)
            return Trace(
                core=np.zeros(0, dtype=np.int16),
                addr=empty64,
                size=np.zeros(0, dtype=np.int16),
                access_class=np.zeros(0, dtype=np.int8),
                flags=np.zeros(0, dtype=np.int8),
                vertex=empty64,
                barriers=barriers,
            )
        return Trace(
            core=np.concatenate([c["core"] for c in self._chunks]),
            addr=np.concatenate([c["addr"] for c in self._chunks]),
            size=np.concatenate([c["size"] for c in self._chunks]),
            access_class=np.concatenate([c["access_class"] for c in self._chunks]),
            flags=np.concatenate([c["flags"] for c in self._chunks]),
            vertex=np.concatenate([c["vertex"] for c in self._chunks]),
            barriers=barriers,
        )
