"""Job model for ``repro serve``: specs, keys, coalescing, backpressure.

The server's unit of work is a :class:`JobSpec` — the full workload
description a client submits (dataset, algorithm, backend, scale,
cores, chunk size, algorithm kwargs). Specs are hashed with the same
canonical-JSON + blake2b machinery the trace store uses
(:func:`repro.store.store.normalize_kwargs`), so two requests that
would produce bit-identical manifests always collide on one key.

:class:`JobManager` owns the lifecycle:

- **warm**: a completed manifest for the key is still in the bounded
  warm cache — answered synchronously, no job created;
- **coalesced**: a job with the same key is already queued or running —
  the new request attaches to it instead of recomputing;
- **cold**: a fresh job is queued onto the worker pool;
- **rejected**: the number of live (queued + running) jobs has reached
  ``queue_depth`` — the caller maps this to HTTP 429.

Every transition is counted (:meth:`JobManager.stats`), and all shared
state is guarded by one lock; the compute itself runs outside it.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.errors import SimulationError
from repro.store.store import normalize_kwargs

__all__ = [
    "Job",
    "JobManager",
    "JobSpec",
    "QueueFullError",
    "job_key",
]

#: Job lifecycle states (``Job.status`` values).
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"


class QueueFullError(SimulationError):
    """Raised by :meth:`JobManager.submit` when the queue is at depth."""


@dataclass(frozen=True)
class JobSpec:
    """One replay request, as submitted by a client."""

    dataset: str
    algorithm: str
    backend: str = "omega"
    scale: float = 1.0
    num_cores: int = 16
    chunk_size: int = 32
    alg_kwargs: Mapping[str, Any] = field(default_factory=dict)

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "JobSpec":
        """Build a spec from a request body, rejecting junk early."""
        if not isinstance(doc, Mapping):
            raise SimulationError("job spec must be a JSON object")
        missing = [k for k in ("dataset", "algorithm") if not doc.get(k)]
        if missing:
            raise SimulationError(
                f"job spec missing required field(s): {', '.join(missing)}"
            )
        known = {
            "dataset", "algorithm", "backend", "scale", "num_cores",
            "chunk_size", "alg_kwargs",
        }
        unknown = sorted(set(doc) - known - {"wait"})
        if unknown:
            raise SimulationError(
                f"unknown job spec field(s): {', '.join(unknown)}"
            )
        kwargs = doc.get("alg_kwargs") or {}
        if not isinstance(kwargs, Mapping):
            raise SimulationError("alg_kwargs must be an object")
        return cls(
            dataset=str(doc["dataset"]),
            algorithm=str(doc["algorithm"]),
            backend=str(doc.get("backend", "omega")),
            scale=float(doc.get("scale", 1.0)),
            num_cores=int(doc.get("num_cores", 16)),
            chunk_size=int(doc.get("chunk_size", 32)),
            alg_kwargs=dict(kwargs),
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "dataset": self.dataset,
            "algorithm": self.algorithm,
            "backend": self.backend,
            "scale": self.scale,
            "num_cores": self.num_cores,
            "chunk_size": self.chunk_size,
            "alg_kwargs": dict(self.alg_kwargs),
        }


def job_key(spec: JobSpec) -> str:
    """Content hash of a spec: identical workloads collide, by design.

    Uses the trace store's kwargs canonicalization so the key space
    matches the cache-key space one level down — a spec whose kwargs
    the store cannot canonicalize is rejected here rather than silently
    computed twice.
    """
    kwargs = normalize_kwargs(dict(spec.alg_kwargs))
    if kwargs is None:
        raise SimulationError(
            "alg_kwargs values must be JSON scalars (bool/int/float/str)"
        )
    payload = {
        "dataset": spec.dataset,
        "algorithm": spec.algorithm,
        "backend": spec.backend,
        "scale": float(spec.scale),
        "num_cores": int(spec.num_cores),
        "chunk_size": int(spec.chunk_size),
        "kwargs": kwargs,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(blob.encode(), digest_size=16).hexdigest()


@dataclass
class Job:
    """One in-flight (or finished) computation for a spec key."""

    id: str
    spec: JobSpec
    key: str
    status: str = QUEUED
    manifest: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    #: How many requests this job answers (1 + coalesced attachments).
    clients: int = 1
    created: float = field(default_factory=time.time)
    started: Optional[float] = None
    finished: Optional[float] = None
    #: Span names emitted by the run's tracer, in completion order —
    #: the progress stream a status poll returns.
    progress: List[str] = field(default_factory=list)
    done_event: threading.Event = field(default_factory=threading.Event)

    def snapshot(self) -> Dict[str, Any]:
        """JSON-able status view (manifest included only when done)."""
        doc: Dict[str, Any] = {
            "job_id": self.id,
            "status": self.status,
            "spec": self.spec.to_dict(),
            "clients": self.clients,
            "progress": list(self.progress),
        }
        if self.status == DONE:
            doc["manifest"] = self.manifest
        if self.status == FAILED:
            doc["error"] = self.error
        return doc


class JobManager:
    """Coalescing, warm-serving, bounded-queue job scheduler.

    ``runner`` computes one spec: ``runner(spec, progress)`` returns the
    run-manifest dict; ``progress`` is a callable the runner may invoke
    with span names as the run advances (entries show up in status
    polls). The runner executes on a private :class:`ThreadPoolExecutor`
    thread and must build its own isolated run context — the manager
    imposes no ambient state on it.
    """

    def __init__(
        self,
        runner: Callable[[JobSpec, Callable[[str], None]], Dict[str, Any]],
        workers: int = 2,
        queue_depth: int = 8,
        warm_capacity: int = 32,
    ) -> None:
        if workers < 1:
            raise SimulationError("JobManager needs at least one worker")
        if queue_depth < 1:
            raise SimulationError("queue_depth must be >= 1")
        self._runner = runner
        self._queue_depth = queue_depth
        self._warm_capacity = warm_capacity
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-serve"
        )
        self._lock = threading.Lock()
        self._jobs: Dict[str, Job] = {}
        self._inflight: Dict[str, Job] = {}
        self._warm: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._seq = 0
        self._counters = {
            "submitted": 0,
            "warm": 0,
            "coalesced": 0,
            "computed": 0,
            "rejected": 0,
            "failed": 0,
        }

    # -- submission ----------------------------------------------------
    def submit(
        self, spec: JobSpec
    ) -> Tuple[str, Optional[Job], Optional[Dict[str, Any]]]:
        """Route one request.

        Returns ``(state, job, manifest)`` where ``state`` is ``"warm"``
        (manifest attached, no job), ``"coalesced"`` (existing job), or
        ``"cold"`` (fresh job queued). Raises :class:`QueueFullError`
        when the live-job count is at the configured depth.
        """
        key = job_key(spec)
        with self._lock:
            self._counters["submitted"] += 1
            manifest = self._warm.get(key)
            if manifest is not None:
                self._warm.move_to_end(key)
                self._counters["warm"] += 1
                return "warm", None, manifest
            job = self._inflight.get(key)
            if job is not None:
                job.clients += 1
                self._counters["coalesced"] += 1
                return "coalesced", job, None
            if len(self._inflight) >= self._queue_depth:
                self._counters["rejected"] += 1
                raise QueueFullError(
                    f"job queue full ({self._queue_depth} live jobs)"
                )
            self._seq += 1
            job = Job(id=f"{key[:12]}-{self._seq}", spec=spec, key=key)
            self._jobs[job.id] = job
            self._inflight[key] = job
            self._counters["computed"] += 1
        self._pool.submit(self._execute, job)
        return "cold", job, None

    def _execute(self, job: Job) -> None:
        job.started = time.time()
        job.status = RUNNING
        try:
            manifest = self._runner(job.spec, job.progress.append)
        except Exception as exc:  # noqa: BLE001  # repro: noqa[EXC001] -- worker-thread boundary: any job failure becomes a FAILED status surfaced to the client
            with self._lock:
                job.status = FAILED
                job.error = f"{type(exc).__name__}: {exc}"
                job.finished = time.time()
                self._inflight.pop(job.key, None)
                self._counters["failed"] += 1
            job.done_event.set()
            return
        with self._lock:
            job.manifest = manifest
            job.status = DONE
            job.finished = time.time()
            self._inflight.pop(job.key, None)
            self._warm[job.key] = manifest
            self._warm.move_to_end(job.key)
            while len(self._warm) > self._warm_capacity:
                self._warm.popitem(last=False)
        job.done_event.set()

    # -- queries -------------------------------------------------------
    def get(self, job_id: str) -> Optional[Job]:
        """The job for ``job_id``, or ``None``."""
        with self._lock:
            return self._jobs.get(job_id)

    def wait(self, job: Job, timeout: Optional[float] = None) -> bool:
        """Block until ``job`` finishes (either way); True on finish."""
        return job.done_event.wait(timeout)

    def stats(self) -> Dict[str, Any]:
        """Counter snapshot plus live-queue occupancy."""
        with self._lock:
            doc: Dict[str, Any] = dict(self._counters)
            doc["live_jobs"] = len(self._inflight)
            doc["warm_entries"] = len(self._warm)
            doc["queue_depth"] = self._queue_depth
            return doc

    def shutdown(self, wait: bool = True) -> None:
        """Stop the worker pool (finishing running jobs when ``wait``)."""
        self._pool.shutdown(wait=wait)
