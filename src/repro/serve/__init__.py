"""Replay-as-a-service: the ``repro serve`` HTTP/JSON job server.

Split in two layers:

- :mod:`repro.serve.jobs` — the transport-free job model: spec
  hashing (reusing the trace store's canonicalization), request
  coalescing, the bounded warm-manifest cache, queue backpressure.
- :mod:`repro.serve.server` — the stdlib HTTP veneer and the
  production runner that maps a job spec onto
  :func:`repro.core.system.run_system` under an isolated
  :class:`repro.core.context.RunContext`.

See ``docs/serving.md`` for the wire API and operational notes.
"""

from repro.serve.jobs import Job, JobManager, JobSpec, QueueFullError, job_key
from repro.serve.server import (
    ReproServer,
    make_server,
    make_system_runner,
    run_server,
)

__all__ = [
    "Job",
    "JobManager",
    "JobSpec",
    "QueueFullError",
    "job_key",
    "ReproServer",
    "make_server",
    "make_system_runner",
    "run_server",
]
