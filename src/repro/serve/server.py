"""``repro serve`` — replay-as-a-service over plain HTTP/JSON.

A deliberately small, zero-dependency job server built on
:class:`http.server.ThreadingHTTPServer`: clients POST a workload spec
and get back either a cached manifest (warm), a handle onto an
already-running identical computation (coalesced), or a fresh job
(cold). The heavy lifting — coalescing, the warm cache, the bounded
queue — lives in :mod:`repro.serve.jobs`; this module is the HTTP
veneer plus the runner that maps a :class:`~repro.serve.jobs.JobSpec`
onto :func:`repro.core.system.run_system`.

API (all JSON):

- ``POST /v1/jobs`` — body is a :class:`JobSpec` dict, plus optional
  ``"wait": true`` to block until the manifest is ready. Responses:
  ``200`` (warm, or ``wait`` completed), ``202`` (job accepted; body
  carries ``job_id`` and ``state`` = ``cold``/``coalesced``), ``429``
  (queue full — retry later), ``400`` (bad spec).
- ``GET /v1/jobs/<id>`` — job status: ``status``, ``progress`` (span
  names from the run's tracer, streamed as the replay advances),
  ``manifest`` when done, ``error`` when failed.
- ``GET /v1/stats`` — counter snapshot (submitted/warm/coalesced/
  computed/rejected/failed, live queue occupancy).
- ``GET /healthz`` — liveness probe.

Isolation: each job runs with its own frozen
:class:`~repro.core.context.RunContext` (shared store, private
tracer), and the obs tracer/registry ambients are thread-local — two
concurrent jobs cannot observe each other's configuration or spans.
"""

from __future__ import annotations

import json
import logging
import threading
from dataclasses import replace
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING, Any, Callable, Dict, Optional, Tuple

from repro.core.context import RunContext, RunRequest
from repro.errors import SimulationError
from repro.obs.tracer import SpanTracer
from repro.serve.jobs import JobManager, JobSpec, QueueFullError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.tracer import _OpenSpan

__all__ = ["ReproServer", "make_server", "make_system_runner", "run_server"]

_LOG = logging.getLogger("repro.serve")

#: Default cap on how long a ``"wait": true`` request may block.
WAIT_TIMEOUT_SECONDS = 600.0


class _ProgressTracer(SpanTracer):
    """A span tracer that also streams closed-span names to a callback.

    This is how a status poll sees live progress: the job's runner
    installs one of these, and every finished span (trace generation,
    replay windows, ...) lands in the job's progress list the moment
    it closes.
    """

    def __init__(self, on_close: Callable[[str], None]) -> None:
        super().__init__()
        self._on_close = on_close

    def _close(self, span: "_OpenSpan", end: float) -> None:
        super()._close(span, end)
        self._on_close(span.name)


def make_system_runner(
    base_context: RunContext,
) -> Callable[[JobSpec, Callable[[str], None]], Dict[str, Any]]:
    """The production runner: one ``run_system`` call per job.

    ``base_context`` carries the server-wide configuration (store,
    ledger, scalar-cache flag); each job derives a private context from
    it with a fresh progress-streaming tracer, so concurrent jobs share
    the trace store but nothing else.
    """
    from repro.algorithms.registry import ALGORITHMS
    from repro.core.system import run_system
    from repro.graph.datasets import load_dataset

    def runner(
        spec: JobSpec, progress: Callable[[str], None]
    ) -> Dict[str, Any]:
        info = ALGORITHMS.get(spec.algorithm)
        if info is None:
            raise SimulationError(
                f"unknown algorithm {spec.algorithm!r};"
                f" available: {', '.join(ALGORITHMS)}"
            )
        progress("load_dataset")
        graph, _ = load_dataset(
            spec.dataset, scale=spec.scale, weighted=info.requires_weights
        )
        if info.requires_undirected and graph.directed:
            graph = graph.as_undirected()
        context = replace(base_context, tracer=_ProgressTracer(progress))
        request = RunRequest(
            algorithm=spec.algorithm,
            backend=spec.backend,
            dataset=spec.dataset,
            chunk_size=spec.chunk_size,
            num_cores=spec.num_cores,
            alg_kwargs=dict(spec.alg_kwargs),
        )
        report = run_system(graph, request=request, context=context)
        return report.manifest()

    return runner


class _Handler(BaseHTTPRequestHandler):
    """Request handler; the owning :class:`ReproServer` has the manager."""

    server: "ReproServer"  # type: ignore[assignment]
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------
    def log_message(self, fmt: str, *args: Any) -> None:
        _LOG.debug("%s %s", self.address_string(), fmt % args)

    def _reply(self, status: int, doc: Dict[str, Any]) -> None:
        blob = json.dumps(doc, sort_keys=True).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(blob)))
        self.end_headers()
        self.wfile.write(blob)

    def _read_body(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise SimulationError("request body required")
        try:
            doc = json.loads(self.rfile.read(length))
        except ValueError:
            raise SimulationError("request body is not valid JSON") from None
        if not isinstance(doc, dict):
            raise SimulationError("request body must be a JSON object")
        return doc

    # -- routes --------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        manager = self.server.manager
        if self.path == "/healthz":
            self._reply(200, {"ok": True})
        elif self.path == "/v1/stats":
            self._reply(200, manager.stats())
        elif self.path.startswith("/v1/jobs/"):
            job = manager.get(self.path[len("/v1/jobs/"):])
            if job is None:
                self._reply(404, {"error": "no such job"})
            else:
                self._reply(200, job.snapshot())
        else:
            self._reply(404, {"error": f"no route {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        if self.path != "/v1/jobs":
            self._reply(404, {"error": f"no route {self.path!r}"})
            return
        manager = self.server.manager
        try:
            doc = self._read_body()
            spec = JobSpec.from_dict(doc)
            state, job, manifest = manager.submit(spec)
        except QueueFullError as exc:
            self._reply(429, {"error": str(exc), "state": "rejected"})
            return
        except SimulationError as exc:
            self._reply(400, {"error": str(exc)})
            return
        if state == "warm":
            self._reply(200, {"state": "warm", "manifest": manifest})
            return
        assert job is not None
        if doc.get("wait"):
            manager.wait(job, timeout=WAIT_TIMEOUT_SECONDS)
            snap = job.snapshot()
            snap["state"] = state
            self._reply(200 if job.status == "done" else 500, snap)
            return
        self._reply(202, {"state": state, "job_id": job.id})


class ReproServer(ThreadingHTTPServer):
    """A :class:`ThreadingHTTPServer` that owns a :class:`JobManager`."""

    daemon_threads = True

    def __init__(self, address: Tuple[str, int],
                 manager: JobManager) -> None:
        super().__init__(address, _Handler)
        self.manager = manager

    def shutdown(self) -> None:
        super().shutdown()
        self.manager.shutdown(wait=False)


def make_server(
    host: str = "127.0.0.1",
    port: int = 0,
    manager: Optional[JobManager] = None,
    context: Optional[RunContext] = None,
    workers: int = 2,
    queue_depth: int = 8,
) -> ReproServer:
    """Build a ready-to-run server (``port=0`` picks an ephemeral port).

    ``manager`` wins when given (tests inject fake runners this way);
    otherwise a production manager is built around ``context`` (default
    :meth:`RunContext.from_env`). Call ``serve_forever()`` on the
    result, or drive it from a background thread::

        server = make_server(port=0)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        ...
        server.shutdown()
    """
    if manager is None:
        base = context if context is not None else RunContext.from_env()
        manager = JobManager(
            make_system_runner(base),
            workers=workers,
            queue_depth=queue_depth,
        )
    return ReproServer((host, port), manager)


def run_server(server: ReproServer) -> threading.Thread:
    """Start ``server`` on a daemon thread and return the thread."""
    thread = threading.Thread(
        target=server.serve_forever, name="repro-serve", daemon=True
    )
    thread.start()
    return thread
