"""Reproduction self-check: DESIGN.md's acceptance criteria as code.

Runs a compact subset of the evaluation (a few minutes of the full
benchmark harness compressed into ~15 seconds) and checks every
"shape" claim the reproduction stands on. Use it after modifying the
simulator to see at a glance whether the paper's qualitative results
still hold:

    python -m repro validate

Each criterion reports PASS/FAIL with the measured value; the run
fails (exit code 1) if any criterion fails.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.config import SimConfig
from repro.core.characterization import access_fraction_to_top, tmam_breakdown
from repro.core.system import compare_systems, run_system
from repro.graph.datasets import load_dataset

__all__ = ["Criterion", "run_validation", "format_validation"]

#: Dataset scale used by the self-check (small enough to run in seconds).
VALIDATE_SCALE = 0.5


@dataclass(frozen=True)
class Criterion:
    """One acceptance criterion's outcome."""

    name: str
    passed: bool
    measured: float
    expectation: str

    def render(self) -> str:
        """One status line."""
        status = "PASS" if self.passed else "FAIL"
        return f"[{status}] {self.name}: {self.measured:.3g} ({self.expectation})"


def _criterion(name: str, measured: float, expectation: str,
               check: Callable[[float], bool]) -> Criterion:
    return Criterion(
        name=name,
        passed=bool(check(measured)),
        measured=float(measured),
        expectation=expectation,
    )


def run_validation(scale: float = VALIDATE_SCALE,
                   progress: Optional[Callable[[str], None]] = None) -> List[Criterion]:
    """Execute the acceptance checks; returns one Criterion per claim."""
    say = progress or (lambda msg: None)
    results: List[Criterion] = []

    say("loading datasets")
    lj, _ = load_dataset("lj", scale=scale)
    road, _ = load_dataset("rCA", scale=scale)
    ap, _ = load_dataset("ap", scale=scale)

    say("running power-law comparisons")
    workloads = [
        compare_systems(lj, "pagerank", dataset="lj"),
        compare_systems(lj, "bfs", dataset="lj"),
        compare_systems(ap.as_undirected() if ap.directed else ap, "cc",
                        dataset="ap"),
    ]
    speedups = [c.speedup for c in workloads]
    results.append(_criterion(
        "power-law geomean speedup", statistics.geometric_mean(speedups),
        "> 1.5 (paper: ~2x)", lambda v: v > 1.5,
    ))
    pagerank = workloads[0]
    results.append(_criterion(
        "PageRank/lj speedup", pagerank.speedup,
        "> 1.3 (paper: ~2.8x)", lambda v: v > 1.3,
    ))
    results.append(_criterion(
        "on-chip traffic reduction (PageRank/lj)",
        pagerank.traffic_reduction,
        ">= 2 (paper: >3x)", lambda v: v >= 2.0,
    ))
    results.append(_criterion(
        "last-level hit-rate gain (OMEGA minus baseline, PageRank/lj)",
        pagerank.omega.stats.last_level_hit_rate
        - pagerank.baseline.stats.l2_hit_rate,
        "> 0 (paper: 0.44 -> >0.75)", lambda v: v > 0,
    ))
    results.append(_criterion(
        "OMEGA last-level hit rate (PageRank/lj)",
        pagerank.omega.stats.last_level_hit_rate,
        "> 0.65 (paper: >0.75)", lambda v: v > 0.65,
    ))
    results.append(_criterion(
        "energy saving (PageRank/lj)", pagerank.energy_saving,
        "> 1.15 (paper: ~2.5x)", lambda v: v > 1.15,
    ))

    say("checking access concentration")
    from repro.algorithms.pagerank import run_pagerank

    lj_frac = access_fraction_to_top(run_pagerank(lj).trace, lj)
    road_frac = access_fraction_to_top(run_pagerank(road).trace, road)
    results.append(_criterion(
        "vtxProp accesses to top-20% (lj)", lj_frac,
        "> 55% (paper: >75%)", lambda v: v > 55.0,
    ))
    results.append(_criterion(
        "vtxProp accesses to top-20% (road)", road_frac,
        "< 45% (paper: ~20-30%)", lambda v: v < 45.0,
    ))

    say("checking TMAM and ablation")
    base_rep = run_system(lj, "pagerank", SimConfig.scaled_baseline())
    results.append(_criterion(
        "baseline memory-bound fraction",
        tmam_breakdown(base_rep)["memory_bound"],
        "> 0.5 (paper: ~0.71)", lambda v: v > 0.5,
    ))
    no_pisc = compare_systems(
        lj, "pagerank",
        omega_config=SimConfig.scaled_omega(use_pisc=False),
        dataset="lj",
    )
    results.append(_criterion(
        "PISC ablation margin (full minus storage-only speedup)",
        pagerank.speedup - no_pisc.speedup,
        "> 0.2 (paper: >3x vs 1.3x)", lambda v: v > 0.2,
    ))

    say("checking non-power-law control")
    road_cmp = compare_systems(road, "pagerank", dataset="rCA")
    results.append(_criterion(
        "road-vs-power-law ordering (lj minus rCA speedup)",
        pagerank.speedup - road_cmp.speedup,
        "> 0 (paper: Fig 18)", lambda v: v > 0,
    ))
    return results


def format_validation(results: List[Criterion]) -> str:
    """Render the criteria as a status block."""
    lines = [c.render() for c in results]
    failed = sum(1 for c in results if not c.passed)
    lines.append(
        f"{len(results) - failed}/{len(results)} criteria passed"
        + ("" if not failed else f" — {failed} FAILED")
    )
    return "\n".join(lines) + "\n"
