#!/usr/bin/env python3
"""Offline trace analysis: capture once, study anywhere.

The simulator is trace-driven, which means the expensive part — the
algorithm run — can be captured once and replayed through any number
of memory-subsystem designs or analyzed directly. This example saves a
PageRank trace to disk, reloads it, replays it through four designs,
and mines the raw event stream for the access-pattern facts the
paper's motivation section is built on.

Run:  python examples/trace_analysis.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import SimConfig, load_dataset
from repro.algorithms import run_pagerank
from repro.bench import print_series, print_table
from repro.core.offload import microcode_for_algorithm
from repro.graph.reorder import reorder_nth_element
from repro.ligra.trace import (
    AccessClass,
    FLAG_ATOMIC,
    FLAG_SRC_READ,
    Trace,
)
from repro.memsim import (
    BaselineHierarchy,
    LockedCacheHierarchy,
    OmegaHierarchy,
    PimHierarchy,
    ScratchpadMapping,
    compute_timing,
    hot_capacity_for,
)


def main() -> None:
    graph, spec = load_dataset("lj")
    rgraph, _ = reorder_nth_element(graph, key="in")
    result = run_pagerank(rgraph)

    # 1. Persist and reload.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "pagerank_lj.npz"
        result.trace.save(path)
        size_kb = path.stat().st_size / 1024
        trace = Trace.load(path)
    print(f"captured {trace.num_events:,} events "
          f"({size_kb:.0f} KB compressed)\n")

    # 2. Mine the raw stream (the paper's Section III facts).
    classes = trace.access_class
    mix = {
        "vtxProp": int((classes == int(AccessClass.VTXPROP)).sum()),
        "edgeList": int((classes == int(AccessClass.EDGELIST)).sum()),
        "nGraphData": int((classes == int(AccessClass.NGRAPH)).sum()),
    }
    print_series(mix, title="event mix by data structure", unit="events")
    atomics = int(((trace.flags & FLAG_ATOMIC) != 0).sum())
    src_reads = int(((trace.flags & FLAG_SRC_READ) != 0).sum())
    print(f"\natomic RMWs: {atomics:,} "
          f"({atomics / trace.num_events:.0%} of events)")
    print(f"source-vertex reads: {src_reads:,}")
    vtx_ids = trace.vtxprop_vertex_ids()
    vtx_ids = vtx_ids[vtx_ids >= 0]
    hot20 = int((vtx_ids < 0.2 * rgraph.num_vertices).sum())
    print(f"vtxProp accesses to top-20% vertices: "
          f"{hot20 / len(vtx_ids):.0%} (the power law at work)\n")

    # 3. Replay the same trace through four designs.
    capacity = hot_capacity_for(
        SimConfig.scaled_omega().scratchpad_total_bytes, 9,
        rgraph.num_vertices,
    )
    mapping = ScratchpadMapping(16, capacity, chunk_size=32)
    designs = {
        "baseline": BaselineHierarchy(SimConfig.scaled_baseline()),
        "omega": OmegaHierarchy(
            SimConfig.scaled_omega(), mapping,
            microcode_for_algorithm("pagerank"),
        ),
        "locked-cache": LockedCacheHierarchy(
            SimConfig.scaled_omega(use_pisc=False, use_source_buffer=False),
            mapping,
        ),
        "graphpim": PimHierarchy(SimConfig.scaled_baseline()),
    }
    rows = []
    baseline_cycles = None
    for name, hierarchy in designs.items():
        out = hierarchy.replay(trace)
        timing = compute_timing(out, hierarchy.config)
        if baseline_cycles is None:
            baseline_cycles = timing.total_cycles
        rows.append(
            {
                "design": name,
                "cycles": round(timing.total_cycles),
                "speedup": round(baseline_cycles / timing.total_cycles, 2),
                "onchip KB": round(out.stats.onchip_traffic_bytes / 1024),
                "bottleneck": timing.bottleneck,
            }
        )
    print_table(rows, "one trace, four memory subsystems")
    print("\n(Replaying a saved trace sidesteps re-running the algorithm —"
          " handy for design-space sweeps and regression archives. Note"
          " that all four designs replay the popularity-REORDERED trace"
          " here; the standalone drivers give each design its natural"
          " input — e.g. GraphPIM runs the original ordering, where its"
          " hot vaults collide more — so headline numbers differ from"
          " benchmarks/bench_alternatives.py.)")


if __name__ == "__main__":
    main()
