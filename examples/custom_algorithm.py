#!/usr/bin/env python3
"""Bring your own algorithm: OMEGA without touching the hardware model.

The paper's selling point over fixed-function accelerators is that
OMEGA runs *any* vertex-centric algorithm — the framework just
annotates the update function and the source-to-source tool emits the
PISC microcode and monitor-register configuration. This example walks
that exact path for an algorithm the paper never evaluated: label
propagation for semi-supervised community detection.

Run:  python examples/custom_algorithm.py
"""

import numpy as np

from repro import SimConfig, load_dataset
from repro.core.offload import UpdateSpec, compile_update, generate_config_code
from repro.core.report import Comparison, SimReport
from repro.memsim.core_model import compute_timing
from repro.memsim.energy import EnergyModel
from repro.memsim.hierarchy import BaselineHierarchy, OmegaHierarchy
from repro.memsim.mapping import ScratchpadMapping
from repro.memsim.scratchpad import hot_capacity_for
from repro.graph.reorder import reorder_nth_element
from repro.ligra import AtomicOp, LigraEngine, VertexSubset, scatter_atomic


def run_label_propagation(graph, seeds, num_cores=16, chunk_size=32,
                          max_rounds=30):
    """Min-label propagation from seed vertices over the engine.

    Each seeded community floods its label; unlabeled vertices adopt
    the minimum label among their in-neighbors (an unsigned-min atomic,
    exactly the PISC's CC operation).
    """
    n = graph.num_vertices
    engine = LigraEngine(graph, num_cores=num_cores, chunk_size=chunk_size)
    label = engine.alloc_prop("label", np.uint32,
                              fill=np.iinfo(np.uint32).max)
    for community, seed in enumerate(seeds):
        label.values[seed] = community

    frontier = VertexSubset(n, ids=np.asarray(seeds, dtype=np.int64))
    rounds = 0
    while frontier and rounds < max_rounds:
        rounds += 1

        def push(srcs, dsts, _weights):
            if len(srcs) == 0:
                return srcs
            return scatter_atomic(
                AtomicOp.UINT_MIN, label.values, dsts, label.values[srcs]
            )

        frontier = engine.edge_map(
            frontier, push,
            src_props=[label], dst_props=[label],
            direction="out", output="auto",
        )
    return engine, label, rounds


def simulate(engine, config, update_spec):
    """Replay a custom algorithm's trace through either hierarchy."""
    trace = engine.build_trace()
    if config.use_scratchpad:
        capacity = hot_capacity_for(
            config.scratchpad_total_bytes,
            engine.vtxprop_bytes_per_vertex(),
            engine.graph.num_vertices,
        )
        mapping = ScratchpadMapping(config.core.num_cores, capacity,
                                    chunk_size=32)
        hierarchy = OmegaHierarchy(config, mapping,
                                   compile_update(update_spec))
    else:
        hierarchy = BaselineHierarchy(config)
    output = hierarchy.replay(trace)
    timing = compute_timing(output, config)
    return SimReport(
        system=config.name, algorithm=update_spec.name, dataset="lj",
        config=config, stats=output.stats, timing=timing,
        energy=EnergyModel().breakdown(output.stats), replay=output,
        num_vertices=engine.graph.num_vertices,
        num_edges=engine.graph.num_edges, trace_events=trace.num_events,
    )


def main() -> None:
    graph, spec = load_dataset("lj")

    # 1. The annotated update function, as the framework developer
    #    would write it for the source-to-source tool.
    update = UpdateSpec(
        name="label_propagation_update",
        atomic_op=AtomicOp.UINT_MIN,
        guarded=True,          # only adopt a *smaller* label
        active_list="sparse",  # frontier-driven
    )
    microcode = compile_update(update)
    print("== generated PISC microcode ==")
    for i, op in enumerate(microcode.ops):
        print(f"  [{i}] {op.value}")
    print(f"  ({microcode.cycles} cycles per offloaded update)\n")

    # 2. Pick seeds (the 4 most-followed accounts) and run functionally
    #    on the popularity-reordered graph (OMEGA's preprocessing).
    rgraph, new_ids = reorder_nth_element(graph, key="in")
    seeds = [0, 1, 2, 3]  # post-reorder, these are the top hubs
    engine, label, rounds = run_label_propagation(rgraph, seeds)
    labeled = (label.values != np.iinfo(np.uint32).max).sum()
    print(f"label propagation converged in {rounds} rounds;"
          f" {labeled}/{rgraph.num_vertices} vertices labeled")
    sizes = np.bincount(label.values[label.values < 4], minlength=4)
    print(f"community sizes: {sizes.tolist()}\n")

    # 3. The configuration code the tool would emit at app start.
    writes = generate_config_code(engine.vtx_props, microcode,
                                  rgraph.num_vertices)
    print("== generated configuration code (first 6 stores) ==")
    for w in writes[:6]:
        print(f"  {w.render()}")
    print(f"  ... {len(writes) - 6} more\n")

    # 4. Price the same trace on both memory subsystems.
    base = simulate(engine, SimConfig.scaled_baseline(), update)
    # Rebuild the engine run for the OMEGA pass (traces are consumed).
    engine2, _, _ = run_label_propagation(rgraph, seeds)
    omega = simulate(engine2, SimConfig.scaled_omega(), update)
    cmp = Comparison(baseline=base, omega=omega)
    print("== simulation ==")
    print(f"baseline cycles: {base.cycles:,.0f}")
    print(f"OMEGA cycles:    {omega.cycles:,.0f}")
    print(f"speedup:         {cmp.speedup:.2f}x")
    print(f"offloaded atomics: {omega.stats.atomics_offloaded:,}"
          f" of {omega.stats.atomics_total:,}")


if __name__ == "__main__":
    main()
