#!/usr/bin/env python3
"""Design-space exploration: which OMEGA ingredients buy what?

Architects rarely adopt a proposal wholesale. This example sweeps the
design space the paper explores piecemeal — scratchpad capacity
(Fig 19), PISC offloading (Section X-A), the source vertex buffer
(Section V-C), and the mapping-chunk match (Section V-D) — on one
workload, and prints a component-attribution table.

Run:  python examples/design_space_exploration.py
"""

from repro import SimConfig, compare_systems, load_dataset
from repro.bench import print_table


def main() -> None:
    graph, spec = load_dataset("lj", weighted=True)
    print(f"workload: SSSP on {spec.name} "
          f"({graph.num_vertices} vertices, {graph.num_edges} arcs)\n")

    configs = {
        "full OMEGA": SimConfig.scaled_omega(),
        "no PISC (storage only)": SimConfig.scaled_omega(use_pisc=False),
        "no source buffer": SimConfig.scaled_omega(use_source_buffer=False),
        "half scratchpads": SimConfig.scaled_omega().with_scratchpad_bytes(512),
        "quarter scratchpads": SimConfig.scaled_omega().with_scratchpad_bytes(256),
    }

    rows = []
    for label, cfg in configs.items():
        cmp = compare_systems(graph, "sssp", omega_config=cfg,
                              dataset=spec.name)
        omega = cmp.omega
        rows.append(
            {
                "configuration": label,
                "speedup": round(cmp.speedup, 2),
                "hot fraction": round(omega.hot_fraction, 2),
                "srcbuf hits": omega.stats.srcbuf_hits,
                "offloaded atomics": omega.stats.atomics_offloaded,
                "bottleneck": omega.timing.bottleneck,
            }
        )
    print_table(rows, "SSSP design-space sweep (vs same baseline)")

    # Chunk matching (Section V-D): the scratchpad mapping should
    # mirror the OpenMP schedule.
    rows = []
    for label, sp_chunk in (("matched (32)", 32), ("mismatched (1)", 1)):
        cmp = compare_systems(
            graph, "sssp", dataset=spec.name,
            chunk_size=32, sp_chunk_size=sp_chunk,
        )
        stats = cmp.omega.stats
        rows.append(
            {
                "sp mapping chunk": label,
                "plain remote SP share": round(stats.sp_plain_remote_share, 3),
                "speedup": round(cmp.speedup, 2),
            }
        )
    print_table(rows, "Mapping-chunk match (Section V-D)")

    print("\nReading the table: PISC offloading carries most of the win;")
    print("the source buffer matters for SSSP because it re-reads each")
    print("source's ShortestLen once per outgoing edge; capacity mostly")
    print("moves the hot fraction, with diminishing returns past ~20%.")


if __name__ == "__main__":
    main()
