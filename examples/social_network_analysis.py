#!/usr/bin/env python3
"""Social-network analytics: the workload class OMEGA was built for.

Models an influence-analysis pipeline over a social graph (the paper's
intro scenario): rank users with PageRank, find communities with
connected components, and measure how the heterogeneous memory
subsystem changes each stage. Along the way it shows the structural
property everything rests on — the power-law concentration of accesses
onto a small hot set — using the library's characterization tools.

Run:  python examples/social_network_analysis.py
"""

import numpy as np

from repro import compare_systems, load_dataset
from repro.algorithms import run_pagerank
from repro.core.characterization import access_fraction_to_top
from repro.graph import characterize


def main() -> None:
    graph, spec = load_dataset("orkut")
    ch = characterize(graph, spec.name)
    print("== the dataset ==")
    print(f"{spec.description}")
    print(f"|V|={ch.num_vertices}  |E|={ch.num_edges}  "
          f"top-20% in-degree connectivity: {ch.in_degree_connectivity:.1f}% "
          f"(paper's orkut: {spec.paper_in_connectivity}%)")

    # Where do the memory accesses actually go?
    result = run_pagerank(graph)
    hot = access_fraction_to_top(result.trace, graph)
    print(f"PageRank sends {hot:.1f}% of its vtxProp accesses to the "
          f"top 20% most-connected users")

    # Stage 1: influence ranking.
    print("\n== stage 1: influence ranking (PageRank) ==")
    pr = compare_systems(graph, "pagerank", dataset=spec.name)
    rank = run_pagerank(graph, trace=False, max_iters=10,
                        tolerance=1e-9).value("rank")
    top_users = np.argsort(-rank)[:5]
    print(f"top influencers (vertex ids): {top_users.tolist()}")
    print(f"OMEGA speedup: {pr.speedup:.2f}x, "
          f"traffic cut {pr.traffic_reduction:.2f}x")

    # Stage 2: community structure (CC needs the symmetric graph).
    print("\n== stage 2: community structure (connected components) ==")
    undirected = graph.as_undirected()
    cc = compare_systems(undirected, "cc", dataset=spec.name)
    from repro.algorithms import run_cc

    labels = run_cc(undirected, trace=False).value("labels")
    sizes = np.bincount(labels[labels >= 0])
    sizes = np.sort(sizes[sizes > 0])[::-1]
    print(f"components: {len(sizes)} (largest holds "
          f"{sizes[0] / graph.num_vertices:.0%} of users)")
    print(f"OMEGA speedup: {cc.speedup:.2f}x")

    # Stage 3: reachability from the top influencer.
    print("\n== stage 3: reach of the top influencer (BFS) ==")
    bfs = compare_systems(graph, "bfs", dataset=spec.name,
                          source=int(top_users[0]))
    from repro.algorithms import run_bfs

    levels = run_bfs(graph, source=int(top_users[0]), trace=False).value("level")
    print(f"reachable users: {(levels >= 0).sum()} "
          f"within {levels.max()} hops")
    print(f"OMEGA speedup: {bfs.speedup:.2f}x")

    print("\n== pipeline summary ==")
    total_base = pr.baseline.cycles + cc.baseline.cycles + bfs.baseline.cycles
    total_omega = pr.omega.cycles + cc.omega.cycles + bfs.omega.cycles
    print(f"whole-pipeline speedup: {total_base / total_omega:.2f}x")


if __name__ == "__main__":
    main()
