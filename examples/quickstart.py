#!/usr/bin/env python3
"""Quickstart: reproduce the paper's headline result in one minute.

Loads the ljournal-2008 stand-in, runs PageRank through both the
baseline CMP and the OMEGA memory subsystem, and prints the headline
ratios (speedup, on-chip traffic reduction, DRAM bandwidth improvement,
memory-system energy saving).

Run:  python examples/quickstart.py
"""

from repro import compare_systems, load_dataset


def main() -> None:
    graph, spec = load_dataset("lj")
    print(f"dataset: {spec.name} — {spec.description}")
    print(f"graph:   {graph.num_vertices} vertices, {graph.num_edges} arcs")

    cmp = compare_systems(graph, "pagerank", dataset=spec.name)

    base, omega = cmp.baseline, cmp.omega
    print()
    print(f"baseline CMP cycles:      {base.cycles:,.0f}")
    print(f"OMEGA cycles:             {omega.cycles:,.0f}")
    print(f"scratchpad hot fraction:  {omega.hot_fraction:.0%} of vertices")
    print()
    print(f"speedup:                  {cmp.speedup:.2f}x   (paper: ~2.8x for PageRank)")
    print(f"on-chip traffic cut:      {cmp.traffic_reduction:.2f}x   (paper: >3x)")
    print(f"DRAM bandwidth improved:  {cmp.dram_bw_improvement:.2f}x   (paper: 2.28x)")
    print(f"memory energy saved:      {cmp.energy_saving:.2f}x   (paper: ~2.5x)")
    print()
    print(f"baseline LLC hit rate:    {base.stats.l2_hit_rate:.1%}   (paper: ~44%)")
    print(f"OMEGA last-level hit:     {omega.stats.last_level_hit_rate:.1%}   (paper: >75%)")
    print(f"atomics offloaded to PISCs: "
          f"{omega.stats.atomics_offloaded:,} of {omega.stats.atomics_total:,}")


if __name__ == "__main__":
    main()
