#!/usr/bin/env python3
"""Capacity planning for graphs that overflow the scratchpads.

The paper's Section VII and Fig 20 address the regime where even the
top-20% hot set no longer fits on chip: (1) the high-level analytic
model estimates what a given scratchpad budget still buys, and (2)
graph slicing — especially the power-law-aware variant — bounds the
working set per pass. This example plans a paper-scale twitter-2010
deployment with both tools.

Run:  python examples/large_graph_planning.py
"""

from repro import SimConfig, load_dataset
from repro.algorithms import run_pagerank
from repro.bench import print_table
from repro.core.analytic import (
    LARGE_GRAPHS,
    WorkloadProfile,
    estimate_cycles,
    estimate_speedup,
    zipf_coverage,
)
from repro.graph.slicing import num_slices_required


def main() -> None:
    twitter = LARGE_GRAPHS["twitter"]
    print(f"planning for {twitter.name}: {twitter.num_vertices / 1e6:.1f}M "
          f"vertices, {twitter.num_edges / 1e9:.2f}B edges\n")

    # Measure the PageRank access mix once, at stand-in scale.
    graph, _ = load_dataset("lj")
    res = run_pagerank(graph)
    profile = WorkloadProfile.from_trace("pagerank", res.trace, graph)

    # Sweep scratchpad budgets at paper scale (Fig 19 x Fig 20).
    rows = []
    for mb in (4, 8, 16, 32, 64):
        omega = SimConfig.paper_omega().with_scratchpad_bytes(
            mb * 1024 * 1024 // 16
        )
        est = estimate_cycles(twitter, profile, omega, bytes_per_vertex=8)
        speedup = estimate_speedup(
            twitter, profile, omega_config=omega, bytes_per_vertex=8
        )
        rows.append(
            {
                "total scratchpad": f"{mb} MB",
                "hot fraction": round(est.hot_fraction, 3),
                "access coverage": round(est.sp_coverage, 3),
                "est. speedup": round(speedup, 2),
            }
        )
    print_table(rows, "Scratchpad budget sweep (analytic, paper scale)")
    print("\nNote the concave coverage column — the power law means the "
          "first megabytes buy most of the accesses (47% from just 5% "
          "of vertices, per the paper's profiling).")

    # Slicing plan (Section VII): how many passes if we insist every
    # slice's hot set fits in 16 MB?
    capacity_vertices = 16 * 1024 * 1024 // 9  # 8B rank + active bit
    plain = num_slices_required(
        twitter.num_vertices, capacity_vertices, power_law_aware=False
    )
    aware = num_slices_required(
        twitter.num_vertices, capacity_vertices, power_law_aware=True
    )
    print("\n== slicing plan (16 MB scratchpad budget) ==")
    print(f"plain slicing:            {plain} passes over the graph")
    print(f"power-law-aware slicing:  {aware} passes "
          f"({plain / aware:.0f}x fewer — the paper's 5x claim)")
    per_slice_cov = zipf_coverage(0.2, twitter.zipf_s)
    print(f"each power-law-aware slice still serves "
          f"~{per_slice_cov:.0%} of its vtxProp accesses on chip")


if __name__ == "__main__":
    main()
